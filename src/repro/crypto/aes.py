"""AES block cipher implemented from scratch per FIPS-197.

Supports 128/192/256-bit keys.  This is the pseudo-random permutation
ℰ of the paper (§4) and the engine behind the CTR/CBC modes used for
document encryption.  Pure Python is slow in absolute terms but all
benchmarks in this repository compare schemes under the same substrate, so
relative results are meaningful.

Implementation notes:

* Encryption/decryption operate on a 16-byte ``bytes`` block.
* The S-box is generated programmatically at import time from the GF(2^8)
  inverse + affine map, then verified against the two corner values FIPS-197
  prints, so a transcription typo is impossible.
* FIPS-197 Appendix C vectors are exercised in ``tests/crypto/test_aes.py``.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    product = 0
    for _ in range(8):
        if b & 1:
            product ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return product


def _build_sbox() -> tuple[bytes, bytes]:
    """Generate the AES S-box and its inverse from first principles."""
    # Multiplicative inverses in GF(2^8) via exhaustive search (runs once).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        # Affine transformation over GF(2).
        result = 0
        for bit in range(8):
            value = (
                (b >> bit) ^ (b >> ((bit + 4) % 8)) ^ (b >> ((bit + 5) % 8))
                ^ (b >> ((bit + 6) % 8)) ^ (b >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            result |= value << bit
        sbox[x] = result
    inv_sbox = [0] * 256
    for x, y in enumerate(sbox):
        inv_sbox[y] = x
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
assert _SBOX[0x00] == 0x63 and _SBOX[0x53] == 0xED, "S-box generation failed"

# Precomputed GF multiplication tables for MixColumns (encrypt: 2,3;
# decrypt: 9, 11, 13, 14).
_MUL = {
    factor: bytes(_gf_mul(factor, x) for x in range(256))
    for factor in (2, 3, 9, 11, 13, 14)
}

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


class AES:
    """AES block cipher for a fixed key.

    >>> cipher = AES(bytes(range(16)))
    >>> block = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(block) == bytes(16)
    True
    """

    block_size = BLOCK_SIZE

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ParameterError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self._nk = len(key) // 4
        self._rounds = self._nk + 6
        self._round_keys = self._expand_key(bytes(key))

    @property
    def rounds(self) -> int:
        """Number of AES rounds for this key size (10/12/14)."""
        return self._rounds

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """FIPS-197 §5.2 key expansion → one 16-byte word list per round key."""
        nk, rounds = self._nk, self._rounds
        words = [list(key[4 * i:4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # Group into per-round flat 16-byte lists (column-major state).
        round_keys = []
        for r in range(rounds + 1):
            flat: list[int] = []
            for w in words[4 * r:4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ParameterError("AES operates on exactly 16-byte blocks")
        _record_op("aes_block")
        state = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for r in range(1, self._rounds):
            state = self._encrypt_round(state, self._round_keys[r])
        # Final round: no MixColumns.
        state = [_SBOX[b] for b in state]
        state = self._shift_rows(state)
        state = [b ^ k for b, k in zip(state, self._round_keys[self._rounds])]
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ParameterError("AES operates on exactly 16-byte blocks")
        _record_op("aes_block")
        state = [b ^ k for b, k in zip(block, self._round_keys[self._rounds])]
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        for r in range(self._rounds - 1, 0, -1):
            state = [b ^ k for b, k in zip(state, self._round_keys[r])]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = [_INV_SBOX[b] for b in state]
        state = [b ^ k for b, k in zip(state, self._round_keys[0])]
        return bytes(state)

    @staticmethod
    def _encrypt_round(state: list[int], round_key: list[int]) -> list[int]:
        state = [_SBOX[b] for b in state]
        state = AES._shift_rows(state)
        state = AES._mix_columns(state)
        return [b ^ k for b, k in zip(state, round_key)]

    # The state is stored column-major: byte index = 4*col + row, matching
    # the FIPS-197 input byte ordering.
    @staticmethod
    def _shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(s: list[int]) -> list[int]:
        mul2, mul3 = _MUL[2], _MUL[3]
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = s[4 * c:4 * c + 4]
            out[4 * c + 0] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
            out[4 * c + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
            out[4 * c + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
            out[4 * c + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]
        return out

    @staticmethod
    def _inv_mix_columns(s: list[int]) -> list[int]:
        m9, m11, m13, m14 = _MUL[9], _MUL[11], _MUL[13], _MUL[14]
        out = [0] * 16
        for c in range(4):
            a0, a1, a2, a3 = s[4 * c:4 * c + 4]
            out[4 * c + 0] = m14[a0] ^ m11[a1] ^ m13[a2] ^ m9[a3]
            out[4 * c + 1] = m9[a0] ^ m14[a1] ^ m11[a2] ^ m13[a3]
            out[4 * c + 2] = m13[a0] ^ m9[a1] ^ m14[a2] ^ m11[a3]
            out[4 * c + 3] = m11[a0] ^ m13[a1] ^ m9[a2] ^ m14[a3]
        return out
