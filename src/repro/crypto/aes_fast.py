"""Table-driven AES encryption (the classic T-table construction).

The straightforward :mod:`repro.crypto.aes` implementation applies
SubBytes/ShiftRows/MixColumns separately; this variant precomputes the four
32-bit T-tables that fuse all three steps, turning each round into 16 table
lookups and XORs — the standard software-AES optimization (and the reason
cache-timing attacks on AES exist; a real deployment would use AES-NI).

Only encryption is table-accelerated (CTR mode never decrypts blocks);
``decrypt_block`` delegates to the reference implementation.  Equivalence
with :class:`repro.crypto.aes.AES` is property-tested, and an ablation
benchmark quantifies the speedup.
"""

from __future__ import annotations

import struct

from repro.crypto import aes as _reference
from repro.errors import ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["FastAES"]


def _build_tables() -> tuple[list[int], ...]:
    sbox = _reference._SBOX
    mul2 = _reference._MUL[2]
    mul3 = _reference._MUL[3]
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = sbox[x]
        word = (mul2[s] << 24) | (s << 16) | (s << 8) | mul3[s]
        t0.append(word)
        t1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        t2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        t3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_tables()
_SBOX = _reference._SBOX


class FastAES:
    """Drop-in AES with T-table encryption.

    >>> from repro.crypto.aes import AES
    >>> key = bytes(16)
    >>> FastAES(key).encrypt_block(bytes(16)) == AES(key).encrypt_block(bytes(16))
    True
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        self._reference = _reference.AES(key)
        # Round keys as big-endian 32-bit words per round (4 words each).
        self._round_words = [
            list(struct.unpack(">4I", bytes(rk)))
            for rk in self._reference._round_keys
        ]
        self._rounds = self._reference.rounds

    @property
    def rounds(self) -> int:
        """Number of AES rounds for this key size."""
        return self._rounds

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block via T-table rounds."""
        if len(block) != 16:
            raise ParameterError("AES operates on exactly 16-byte blocks")
        _record_op("aes_block")
        w = self._round_words
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= w[0][0]
        s1 ^= w[0][1]
        s2 ^= w[0][2]
        s3 ^= w[0][3]
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        for r in range(1, self._rounds):
            rk = w[r]
            n0 = (t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF]
                  ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[0])
            n1 = (t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF]
                  ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[1])
            n2 = (t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF]
                  ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[2])
            n3 = (t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF]
                  ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[3])
            s0, s1, s2, s3 = n0, n1, n2, n3
        # Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        rk = w[self._rounds]
        sbox = _SBOX
        f0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[0]
        f1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[1]
        f2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[2]
        f3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[3]
        return struct.pack(">4I", f0 & 0xFFFFFFFF, f1 & 0xFFFFFFFF,
                           f2 & 0xFFFFFFFF, f3 & 0xFFFFFFFF)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt via the reference implementation (cold path)."""
        return self._reference.decrypt_block(block)
