"""Pseudo-random generator G(r) and HKDF (paper §4).

Scheme 1 masks its document-id bit arrays as ``I(w) ⊕ G(r)`` where ``r`` is
a per-keyword nonce.  :func:`prg_expand` realizes G as counter-mode
expansion of HMAC-SHA256 keyed by the seed — the standard PRF-to-PRG
construction, secure as long as HMAC is a PRF.

HKDF (RFC 5869) is provided for the places where a seed must first be
*extracted* from non-uniform material (e.g. ElGamal shared secrets).
"""

from __future__ import annotations

from repro.crypto.hmac_sha256 import hmac_sha256
from repro.crypto.prf import Prf
from repro.errors import ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["prg_expand", "Prg", "hkdf_extract", "hkdf_expand", "hkdf"]

_HASH_LEN = 32


def prg_expand(seed: bytes, length: int) -> bytes:
    """Expand *seed* into *length* pseudo-random bytes (the paper's G(r)).

    Deterministic: the same seed always produces the same stream, which is
    what lets the client re-derive ``G(r)`` during Scheme 1 updates.
    """
    if length < 0:
        raise ParameterError("PRG output length must be non-negative")
    if not seed:
        raise ParameterError("PRG seed must be non-empty")
    _record_op("prg_expand")
    prf = Prf(seed, label=b"repro.prg")
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += prf.evaluate(counter.to_bytes(8, "big"))
        counter += 1
    return bytes(out[:length])


class Prg:
    """Streaming PRG: successive :meth:`next_bytes` calls continue the stream.

    ``Prg(seed).next_bytes(a) + Prg-continued(b)`` equals
    ``prg_expand(seed, a + b)`` — the stream is a pure function of the seed,
    with an internal offset cursor.
    """

    def __init__(self, seed: bytes) -> None:
        if not seed:
            raise ParameterError("PRG seed must be non-empty")
        self._prf = Prf(seed, label=b"repro.prg")
        self._counter = 0
        self._pending = b""

    def next_bytes(self, length: int) -> bytes:
        """Return the next *length* bytes of the stream."""
        if length < 0:
            raise ParameterError("PRG output length must be non-negative")
        out = bytearray(self._pending[:length])
        self._pending = self._pending[length:]
        while len(out) < length:
            block = self._prf.evaluate(self._counter.to_bytes(8, "big"))
            self._counter += 1
            take = min(length - len(out), len(block))
            out += block[:take]
            self._pending = block[take:]
        return bytes(out)


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """RFC 5869 extract step: concentrate *ikm* into a 32-byte PRK."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """RFC 5869 expand step: derive *length* output bytes from *prk*."""
    if len(prk) < _HASH_LEN:
        raise ParameterError("HKDF PRK must be at least hash-length bytes")
    if not 0 < length <= 255 * _HASH_LEN:
        raise ParameterError("HKDF output length out of range")
    out = bytearray()
    block = b""
    counter = 1
    while len(out) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        out += block
        counter += 1
    return bytes(out[:length])


def hkdf(ikm: bytes, *, salt: bytes = b"", info: bytes = b"",
         length: int = 32) -> bytes:
    """One-shot HKDF: extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
