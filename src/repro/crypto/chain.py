"""Lamport-style pseudo-random hash chains (paper §5.4, ref [17]).

A chain of length *l* from seed *a* is the sequence

    a, f(a), f^2(a), ..., f^l(a)

where f is a PRF-derived one-way step.  Scheme 2 keys its update masks with
chain elements consumed *backwards* — the j-th update uses ``f^(l-ctr)(a)``
— so that:

* the client (who knows the seed) can jump to any position directly;
* the server, given a *later* (lower-exponent) element via a trapdoor, can
  walk *forward* to recover every earlier update key, but can never walk
  backward to keys for future updates.

:class:`HashChain` is the client-side object (seed known, with optional
checkpointing so repeated position queries are O(spacing) instead of O(l));
:func:`chain_step` / :class:`ChainWalker` serve the server side, which only
ever steps forward.
"""

from __future__ import annotations

from repro.crypto.sha256 import SHA256
from repro.errors import ChainExhaustedError, ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["chain_step", "HashChain", "ChainWalker", "STEP_LABEL"]

STEP_LABEL = b"repro.chain.step"

# The chain function only needs one-wayness, not a keyed PRF, so it is a
# plain label-prefixed hash: SHA-256(label ‖ element).  The 16-byte label
# plus a 32-byte element fit one compression-function call, which matters —
# chain construction runs l steps per keyword and the server walk runs in
# a tight loop.  The label-absorbed midstate is cloned per step.
_STEP_TEMPLATE = SHA256(STEP_LABEL)


def chain_step(element: bytes) -> bytes:
    """One forward application of the chain function f.

    Implemented as SHA-256 over a fixed public label prefix: one-way under
    the usual assumptions and domain-separated from every other hash use
    in the library.
    """
    _record_op("chain_step")
    h = _STEP_TEMPLATE.copy()
    h.update(element)
    return h.digest()


class HashChain:
    """A length-*l* hash chain owned by the party that knows the seed.

    Positions are indexed by the number of forward steps from the seed:
    ``element(0) == seed``, ``element(l) == f^l(seed)``.  Scheme 2 uses
    ``element(l - ctr)`` as the key for update number ``ctr``.

    ``checkpoint_spacing`` trades memory for speed: with spacing s the chain
    stores l/s checkpoints at construction and answers any ``element(i)``
    query with at most s forward steps.
    """

    def __init__(self, seed: bytes, length: int,
                 checkpoint_spacing: int = 64) -> None:
        if not seed:
            raise ParameterError("chain seed must be non-empty")
        if length < 1:
            raise ParameterError("chain length must be at least 1")
        if checkpoint_spacing < 1:
            raise ParameterError("checkpoint spacing must be at least 1")
        self._length = length
        self._spacing = checkpoint_spacing
        self._checkpoints: dict[int, bytes] = {}
        element = seed
        self._checkpoints[0] = element
        for i in range(1, length + 1):
            element = chain_step(element)
            if i % checkpoint_spacing == 0 or i == length:
                self._checkpoints[i] = element

    @property
    def length(self) -> int:
        """Total number of forward steps available (the paper's l)."""
        return self._length

    def element(self, position: int) -> bytes:
        """Return f^position(seed) for 0 <= position <= length."""
        if not 0 <= position <= self._length:
            raise ParameterError(
                f"chain position {position} outside 0..{self._length}"
            )
        if position in self._checkpoints:
            return self._checkpoints[position]
        base = (position // self._spacing) * self._spacing
        element = self._checkpoints[base]
        for _ in range(position - base):
            element = chain_step(element)
        return element

    def key_for_counter(self, ctr: int) -> bytes:
        """The Scheme 2 update key for counter value *ctr*: f^(l-ctr)(seed).

        Counters run 1..l; when ctr exceeds l the chain is exhausted and the
        caller must re-initialize with a fresh seed (§5.6, Optimization 2
        discussion).
        """
        if ctr < 1:
            raise ParameterError("chain counters start at 1")
        if ctr > self._length:
            raise ChainExhaustedError(
                f"chain of length {self._length} exhausted at counter {ctr}"
            )
        return self.element(self._length - ctr)


class ChainWalker:
    """Server-side forward walker starting from a trapdoor element.

    The server receives ``t' = f^(l-ctr)(seed)`` and must find earlier
    update keys, each of which is some ``f^k`` of the start element.  It
    recognizes them by comparing a PRF *verifier* of the current element
    against verifiers stored with each update (the paper's f'(k_j)).
    """

    def __init__(self, start: bytes, max_steps: int) -> None:
        if max_steps < 0:
            raise ParameterError("max_steps must be non-negative")
        self._current = start
        self._steps_left = max_steps
        self.steps_taken = 0

    @property
    def current(self) -> bytes:
        """The chain element the walker is currently standing on."""
        return self._current

    def advance(self) -> bytes:
        """Take one forward step; errors out past the step budget."""
        if self._steps_left == 0:
            raise ChainExhaustedError(
                "chain walk exceeded the maximum number of steps"
            )
        self._current = chain_step(self._current)
        self._steps_left -= 1
        self.steps_taken += 1
        return self._current

    def walk_until(self, predicate) -> bytes:
        """Advance until ``predicate(element)`` is true; return that element.

        Checks the starting element first, mirroring the paper's Search
        description ("check if f'(t'_w) = f'(k_j(w)) then k_j(w) = t'_w
        otherwise ... perform the checking again").
        """
        while not predicate(self._current):
            self.advance()
        return self._current
