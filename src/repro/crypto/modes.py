"""Block-cipher modes of operation (ECB, CBC, CTR) and PKCS#7 padding.

CTR is the primary mode: document bodies and Scheme 2 id-list segments are
encrypted with AES-CTR under single-use keys.  CBC and ECB exist for the
baselines and for test cross-checks against NIST SP 800-38A vectors.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.bytesutil import xor_bytes
from repro.errors import PaddingError, ParameterError

__all__ = [
    "pkcs7_pad",
    "pkcs7_unpad",
    "ecb_encrypt",
    "ecb_decrypt",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_keystream",
    "ctr_xcrypt",
]


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding to a full multiple of *block_size*."""
    if not 0 < block_size <= 255:
        raise ParameterError("PKCS#7 block size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("ciphertext length is not a padded multiple")
    pad_len = data[-1]
    if not 0 < pad_len <= block_size:
        raise PaddingError("invalid padding byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("inconsistent padding bytes")
    return data[:-pad_len]


def _require_blocks(data: bytes, what: str) -> None:
    if len(data) % BLOCK_SIZE:
        raise ParameterError(f"{what} must be a multiple of {BLOCK_SIZE} bytes")


def ecb_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """ECB mode (no diffusion between blocks — baselines/tests only)."""
    _require_blocks(plaintext, "ECB plaintext")
    cipher = AES(key)
    return b"".join(
        cipher.encrypt_block(plaintext[i:i + BLOCK_SIZE])
        for i in range(0, len(plaintext), BLOCK_SIZE)
    )


def ecb_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Invert :func:`ecb_encrypt`."""
    _require_blocks(ciphertext, "ECB ciphertext")
    cipher = AES(key)
    return b"".join(
        cipher.decrypt_block(ciphertext[i:i + BLOCK_SIZE])
        for i in range(0, len(ciphertext), BLOCK_SIZE)
    )


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """CBC mode over already-padded plaintext."""
    if len(iv) != BLOCK_SIZE:
        raise ParameterError("CBC IV must be one block")
    _require_blocks(plaintext, "CBC plaintext")
    cipher = AES(key)
    out = bytearray()
    previous = iv
    for i in range(0, len(plaintext), BLOCK_SIZE):
        block = cipher.encrypt_block(
            xor_bytes(plaintext[i:i + BLOCK_SIZE], previous)
        )
        out += block
        previous = block
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Invert :func:`cbc_encrypt`."""
    if len(iv) != BLOCK_SIZE:
        raise ParameterError("CBC IV must be one block")
    _require_blocks(ciphertext, "CBC ciphertext")
    cipher = AES(key)
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i:i + BLOCK_SIZE]
        out += xor_bytes(cipher.decrypt_block(block), previous)
        previous = block
    return bytes(out)


def ctr_keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Generate *length* CTR keystream bytes for (key, nonce).

    The 16-byte counter block is ``nonce (8 bytes) || counter (8 bytes)``.
    A (key, nonce) pair must never be reused across different messages.

    Uses the T-table AES (property-tested equivalent to the reference
    implementation): CTR only ever encrypts, and keystream generation is
    the hottest AES path in the library.
    """
    from repro.crypto.aes_fast import FastAES

    if len(nonce) != 8:
        raise ParameterError("CTR nonce must be 8 bytes")
    if length < 0:
        raise ParameterError("keystream length must be non-negative")
    cipher = FastAES(key)
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = nonce + counter.to_bytes(8, "big")
        out += cipher.encrypt_block(block)
        counter += 1
    return bytes(out[:length])


def ctr_xcrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """CTR encryption/decryption (self-inverse XOR with the keystream)."""
    stream = ctr_keystream(key, nonce, len(data))
    return xor_bytes(data, stream)
