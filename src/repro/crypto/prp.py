"""Pseudo-random permutations (paper §4, "i.e. a block cipher").

Two instantiations:

* :class:`BlockPrp` — AES on fixed 16-byte inputs; the textbook PRP.
* :class:`FeistelPrp` — a length-preserving keyed permutation over
  *arbitrary-length* byte strings (≥ 2 bytes), built as a 4-round
  Luby-Rackoff Feistel network with HMAC-SHA256 round functions.  Scheme 2
  needs to mask a serialized id-list of variable length with "a secure
  permutation function ℰ_k" — this is that object.

Four Feistel rounds with independent round functions yield a strong
pseudo-random permutation (Luby–Rackoff); round keys are derived from the
user key with domain separation.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.bytesutil import xor_bytes
from repro.crypto.prf import Prf, derive_key
from repro.errors import ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["BlockPrp", "FeistelPrp"]


class BlockPrp:
    """AES as a PRP over 16-byte strings."""

    width = BLOCK_SIZE

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)

    def forward(self, block: bytes) -> bytes:
        """Apply the permutation."""
        return self._aes.encrypt_block(block)

    def inverse(self, block: bytes) -> bytes:
        """Invert the permutation."""
        return self._aes.decrypt_block(block)


class FeistelPrp:
    """Variable-length PRP via a 4-round unbalanced Feistel network.

    For an input of n ≥ 2 bytes, split into left/right halves of
    ``n//2`` and ``n - n//2`` bytes.  Each round XORs one half with a
    PRF of the other, truncated/expanded to the right width.  Because the
    split depends only on the length, the construction is a permutation on
    ``{0,1}^{8n}`` for every fixed n.

    One-byte inputs cannot be usefully Feistel-split; they are rejected.
    Scheme 2's id-list segments are always ≥ 4 bytes so this never binds.
    """

    rounds = 4

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ParameterError("FeistelPrp key must be non-empty")
        self._round_prfs = [
            Prf(derive_key(key, b"feistel-round-%d" % r), label=b"repro.feistel")
            for r in range(self.rounds)
        ]

    def _round_mask(self, round_index: int, data: bytes, width: int) -> bytes:
        """PRF-expand *data* to *width* bytes for one Feistel round."""
        _record_op("feistel_round")
        prf = self._round_prfs[round_index]
        out = bytearray()
        counter = 0
        while len(out) < width:
            out += prf.evaluate(counter.to_bytes(4, "big") + data)
            counter += 1
        return bytes(out[:width])

    def forward(self, data: bytes) -> bytes:
        """Apply the permutation to *data* (length preserved)."""
        if len(data) < 2:
            raise ParameterError("FeistelPrp requires inputs of >= 2 bytes")
        split = len(data) // 2
        left, right = data[:split], data[split:]
        for r in range(self.rounds):
            mask = self._round_mask(r, right, len(left))
            left, right = right, xor_bytes(left, mask)
            # After the swap the halves change width; recompute the split by
            # swapping roles each round (unbalanced Feistel bookkeeping).
        return left + right

    def inverse(self, data: bytes) -> bytes:
        """Invert :meth:`forward`."""
        if len(data) < 2:
            raise ParameterError("FeistelPrp requires inputs of >= 2 bytes")
        split = len(data) // 2
        # Reconstruct the widths the forward pass produced.  Forward starts
        # with (a, b) = (n//2, n - n//2) and swaps each round, so after 4
        # rounds (even count) the final halves have widths (n//2, n - n//2)
        # again.
        left, right = data[:split], data[split:]
        for r in reversed(range(self.rounds)):
            mask = self._round_mask(r, left, len(right))
            left, right = xor_bytes(right, mask), left
        return left + right
