"""SHA-256 implemented from scratch per FIPS 180-4.

The incremental :class:`SHA256` object mirrors the ``hashlib`` API surface
(``update`` / ``digest`` / ``hexdigest`` / ``copy``) so the rest of the
library can treat it as a drop-in primitive.  Test vectors from FIPS 180-4
and NIST CAVP are exercised in ``tests/crypto/test_sha256.py``.
"""

from __future__ import annotations

import struct

from repro.crypto.bytesutil import rotr32, shr32
from repro.errors import ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["SHA256", "sha256"]

# First 32 bits of the fractional parts of the cube roots of the first 64
# primes (FIPS 180-4 §4.2.2).
_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5,
    0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC,
    0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7,
    0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3,
    0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5,
    0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

# First 32 bits of the fractional parts of the square roots of the first 8
# primes (FIPS 180-4 §5.3.3).
_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK32 = 0xFFFFFFFF


class SHA256:
    """Incremental SHA-256 hash object (hashlib-compatible surface)."""

    digest_size = 32
    block_size = 64
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_H0)
        self._buffer = b""
        self._length = 0  # total message length in bytes
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb *data* into the hash state."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise ParameterError("SHA256.update requires bytes-like input")
        data = bytes(data)
        self._length += len(data)
        self._buffer += data
        n_full = len(self._buffer) // 64
        for i in range(n_full):
            self._compress(self._buffer[i * 64:(i + 1) * 64])
        self._buffer = self._buffer[n_full * 64:]

    def digest(self) -> bytes:
        """Return the 32-byte digest of everything absorbed so far."""
        clone = self.copy()
        bit_length = clone._length * 8
        # Padding: 0x80, zeros, then the 64-bit big-endian bit length, so the
        # padded message is a multiple of 64 bytes.
        pad_len = (55 - clone._length) % 64
        clone.update(b"\x80" + b"\x00" * pad_len
                     + struct.pack(">Q", bit_length))
        assert not clone._buffer
        return struct.pack(">8I", *clone._h)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA256":
        """Return an independent copy of the current hash state."""
        clone = SHA256()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def _compress(self, block: bytes) -> None:
        """Run the FIPS 180-4 compression function on one 64-byte block.

        Rotations are inlined ((x >> r) | (x << (32 - r))) and all hot
        values live in locals: this function dominates the cost of every
        hash-chain walk and PRF evaluation in the library, so it is written
        for CPython speed rather than elegance.
        """
        _record_op("sha256_compress")
        mask = _MASK32
        w = list(struct.unpack(">16I", block))
        append = w.append
        for t in range(16, 64):
            x = w[t - 15]
            s0 = (((x >> 7) | (x << 25)) ^ ((x >> 18) | (x << 14))
                  ^ (x >> 3)) & mask
            y = w[t - 2]
            s1 = (((y >> 17) | (y << 15)) ^ ((y >> 19) | (y << 13))
                  ^ (y >> 10)) & mask
            append((w[t - 16] + s0 + w[t - 7] + s1) & mask)

        a, b, c, d, e, f, g, h = self._h
        k = _K
        for t in range(64):
            s1 = (((e >> 6) | (e << 26)) ^ ((e >> 11) | (e << 21))
                  ^ ((e >> 25) | (e << 7))) & mask
            t1 = (h + s1 + ((e & f) ^ (~e & g)) + k[t] + w[t]) & mask
            s0 = (((a >> 2) | (a << 30)) ^ ((a >> 13) | (a << 19))
                  ^ ((a >> 22) | (a << 10))) & mask
            t2 = (s0 + ((a & b) ^ (a & c) ^ (b & c))) & mask
            h = g
            g = f
            f = e
            e = (d + t1) & mask
            d = c
            c = b
            b = a
            a = (t1 + t2) & mask

        hh = self._h
        self._h = [
            (hh[0] + a) & mask, (hh[1] + b) & mask,
            (hh[2] + c) & mask, (hh[3] + d) & mask,
            (hh[4] + e) & mask, (hh[5] + f) & mask,
            (hh[6] + g) & mask, (hh[7] + h) & mask,
        ]


def sha256(data: bytes) -> bytes:
    """One-shot SHA-256: return the 32-byte digest of *data*."""
    return SHA256(data).digest()
