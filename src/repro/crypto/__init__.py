"""From-scratch cryptographic substrate for the SSE reproduction.

Nothing in this package imports third-party crypto: SHA-256, HMAC, AES,
modes, PRF/PRG, the variable-length Feistel PRP, ElGamal (with its own
Miller–Rabin number theory), and Lamport hash chains are all implemented
here and validated against official test vectors in ``tests/crypto``.
"""

from repro.crypto.aes import AES
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.chain import ChainWalker, HashChain, chain_step
from repro.crypto.elgamal import (ElGamalCiphertext, ElGamalKeyPair,
                                  ElGamalPublicKey, generate_keypair)
from repro.crypto.hmac_sha256 import HMACSHA256, hmac_sha256
from repro.crypto.numtheory import (SchnorrGroup, generate_prime,
                                    generate_safe_prime,
                                    generate_schnorr_group,
                                    is_probable_prime)
from repro.crypto.prf import Prf, derive_key
from repro.crypto.prg import Prg, hkdf, prg_expand
from repro.crypto.prp import BlockPrp, FeistelPrp
from repro.crypto.rng import HmacDrbg, RandomSource, SystemRandomSource, default_rng
from repro.crypto.sha256 import SHA256, sha256

__all__ = [
    "AES",
    "AuthenticatedCipher",
    "BlockPrp",
    "ChainWalker",
    "ElGamalCiphertext",
    "ElGamalKeyPair",
    "ElGamalPublicKey",
    "FeistelPrp",
    "HMACSHA256",
    "HashChain",
    "HmacDrbg",
    "Prf",
    "Prg",
    "RandomSource",
    "SHA256",
    "SchnorrGroup",
    "SystemRandomSource",
    "chain_step",
    "default_rng",
    "derive_key",
    "generate_keypair",
    "generate_prime",
    "generate_safe_prime",
    "generate_schnorr_group",
    "hkdf",
    "hmac_sha256",
    "is_probable_prime",
    "prg_expand",
    "sha256",
]
