"""Low-level byte-string helpers shared across the crypto substrate.

These functions are intentionally tiny and dependency-free: everything in
:mod:`repro.crypto` is built from scratch on top of them.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ParameterError

__all__ = [
    "xor_bytes",
    "ct_equal",
    "int_to_bytes",
    "bytes_to_int",
    "chunks",
    "pad_to_length",
    "rotl32",
    "rotr32",
    "shr32",
]

_MASK32 = 0xFFFFFFFF


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Return the bytewise XOR of two equal-length byte strings.

    Raises :class:`ParameterError` on length mismatch rather than silently
    truncating, because silent truncation is how masking bugs hide.
    """
    if len(a) != len(b):
        raise ParameterError(
            f"xor_bytes length mismatch: {len(a)} != {len(b)}"
        )
    return bytes(x ^ y for x, y in zip(a, b))


def ct_equal(a: bytes, b: bytes) -> bool:
    """Constant-time byte-string comparison.

    Used wherever an attacker-influenced value is compared against a secret
    (MAC tags, chain verifiers).  The loop always inspects every byte of the
    longer input.
    """
    if len(a) != len(b):
        # Still burn time proportional to the inputs to avoid an early-exit
        # length oracle beyond the unavoidable length leak.
        result = 1
        for x, y in zip(a.ljust(len(b), b"\x00"), b.ljust(len(a), b"\x00")):
            result |= x ^ y
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian.

    When *length* is omitted, the minimal number of bytes is used (at least
    one, so ``int_to_bytes(0) == b"\\x00"``).
    """
    if value < 0:
        raise ParameterError("int_to_bytes requires a non-negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    try:
        return value.to_bytes(length, "big")
    except OverflowError as exc:
        raise ParameterError(
            f"{value} does not fit in {length} bytes"
        ) from exc


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string to a non-negative integer."""
    return int.from_bytes(data, "big")


def chunks(data: bytes, size: int) -> Iterator[bytes]:
    """Yield consecutive *size*-byte slices of *data*; the last may be short."""
    if size <= 0:
        raise ParameterError("chunk size must be positive")
    for offset in range(0, len(data), size):
        yield data[offset:offset + size]


def pad_to_length(data: bytes, length: int) -> bytes:
    """Right-pad *data* with zero bytes up to *length* (error if too long)."""
    if len(data) > length:
        raise ParameterError(
            f"data of {len(data)} bytes exceeds target length {length}"
        )
    return data + b"\x00" * (length - len(data))


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit word left."""
    value &= _MASK32
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def rotr32(value: int, amount: int) -> int:
    """Rotate a 32-bit word right."""
    value &= _MASK32
    return ((value >> amount) | (value << (32 - amount))) & _MASK32


def shr32(value: int, amount: int) -> int:
    """Logical right shift of a 32-bit word."""
    return (value & _MASK32) >> amount
