"""Randomness sources: the system RNG and a deterministic HMAC-DRBG.

Production callers use :class:`SystemRandomSource` (``os.urandom``).  Tests
and benchmarks use :class:`HmacDrbg`, a deterministic generator modeled on
NIST SP 800-90A HMAC_DRBG, so every experiment in this repository is
reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

import os
from typing import Protocol

from repro.crypto.hmac_sha256 import hmac_sha256
from repro.errors import ParameterError

__all__ = ["RandomSource", "SystemRandomSource", "HmacDrbg", "default_rng"]


class RandomSource(Protocol):
    """Anything that can produce random bytes and bounded random integers."""

    def random_bytes(self, n: int) -> bytes:
        """Return *n* fresh random bytes."""
        ...

    def randint_below(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)``."""
        ...


class _RandintMixin:
    """Shared rejection-sampling ``randint_below`` for byte-oriented RNGs."""

    def random_bytes(self, n: int) -> bytes:  # pragma: no cover - overridden
        raise NotImplementedError

    def randint_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ParameterError("randint_below bound must be positive")
        if bound == 1:
            return 0
        n_bits = bound.bit_length()
        n_bytes = (n_bits + 7) // 8
        excess_bits = n_bytes * 8 - n_bits
        while True:
            candidate = int.from_bytes(self.random_bytes(n_bytes), "big")
            candidate >>= excess_bits
            if candidate < bound:
                return candidate

    def randint_range(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ParameterError("randint_range requires low <= high")
        return low + self.randint_below(high - low + 1)


class SystemRandomSource(_RandintMixin):
    """Cryptographically secure randomness from the operating system."""

    def random_bytes(self, n: int) -> bytes:
        """Return *n* bytes from ``os.urandom``."""
        if n < 0:
            raise ParameterError("cannot request a negative byte count")
        return os.urandom(n)


class HmacDrbg(_RandintMixin):
    """Deterministic random bit generator (NIST SP 800-90A HMAC_DRBG shape).

    State is the usual ``(K, V)`` pair; each ``random_bytes`` call ratchets
    the state so outputs never repeat.  Reseeding mixes new entropy into the
    key.  This is used only for reproducible tests/benchmarks — production
    key generation goes through :class:`SystemRandomSource`.
    """

    def __init__(self, seed: bytes | int) -> None:
        if isinstance(seed, int):
            if seed < 0:
                raise ParameterError("integer seeds must be non-negative")
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big")
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._update(seed)

    def _update(self, provided: bytes = b"") -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided)
        self._value = hmac_sha256(self._key, self._value)
        if provided:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided)
            self._value = hmac_sha256(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix additional entropy into the generator state."""
        self._update(entropy)

    def random_bytes(self, n: int) -> bytes:
        """Return the next *n* deterministic pseudo-random bytes."""
        if n < 0:
            raise ParameterError("cannot request a negative byte count")
        out = bytearray()
        while len(out) < n:
            self._value = hmac_sha256(self._key, self._value)
            out += self._value
        self._update()
        return bytes(out[:n])


def default_rng(seed: bytes | int | None = None) -> RandomSource:
    """Return the system RNG, or a seeded deterministic DRBG if *seed* given."""
    if seed is None:
        return SystemRandomSource()
    return HmacDrbg(seed)
