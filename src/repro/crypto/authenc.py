"""Authenticated encryption for document bodies: AES-CTR + HMAC (EtM).

The paper encrypts each data item ``M_i`` as ``E_km(M_i)`` with an ordinary
symmetric cipher.  We use encrypt-then-MAC so a tampering server is
detected: ciphertext is ``nonce(8) || CTR(body) || tag(16)`` where the tag
is HMAC-SHA256 (truncated to 16 bytes) over nonce+ciphertext.  Encryption
and MAC keys are derived independently from the caller's key.
"""

from __future__ import annotations

from repro.crypto.bytesutil import ct_equal
from repro.crypto.hmac_sha256 import hmac_sha256
from repro.crypto.modes import ctr_xcrypt
from repro.crypto.prf import derive_key
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import AuthenticationError, ParameterError

__all__ = ["AuthenticatedCipher", "NONCE_SIZE", "TAG_SIZE", "OVERHEAD"]

NONCE_SIZE = 8
TAG_SIZE = 16
OVERHEAD = NONCE_SIZE + TAG_SIZE


class AuthenticatedCipher:
    """Encrypt-then-MAC AEAD bound to a single long-term key.

    >>> cipher = AuthenticatedCipher(b"k" * 32)
    >>> cipher.decrypt(cipher.encrypt(b"hello")) == b"hello"
    True
    """

    def __init__(self, key: bytes, rng: RandomSource | None = None) -> None:
        if len(key) < 16:
            raise ParameterError("AEAD key must be at least 16 bytes")
        self._enc_key = derive_key(key, b"authenc-enc", 16)
        self._mac_key = derive_key(key, b"authenc-mac", 32)
        self._rng = rng if rng is not None else SystemRandomSource()

    def encrypt(self, plaintext: bytes, associated_data: bytes = b"") -> bytes:
        """Encrypt and authenticate *plaintext* (and bind *associated_data*)."""
        nonce = self._rng.random_bytes(NONCE_SIZE)
        body = ctr_xcrypt(self._enc_key, nonce, plaintext)
        tag = self._tag(nonce, body, associated_data)
        return nonce + body + tag

    def decrypt(self, ciphertext: bytes, associated_data: bytes = b"") -> bytes:
        """Verify and decrypt; raises :class:`AuthenticationError` on tamper."""
        if len(ciphertext) < OVERHEAD:
            raise AuthenticationError("ciphertext too short")
        nonce = ciphertext[:NONCE_SIZE]
        tag = ciphertext[-TAG_SIZE:]
        body = ciphertext[NONCE_SIZE:-TAG_SIZE]
        expected = self._tag(nonce, body, associated_data)
        if not ct_equal(tag, expected):
            raise AuthenticationError("authentication tag mismatch")
        return ctr_xcrypt(self._enc_key, nonce, body)

    def ciphertext_length(self, plaintext_length: int) -> int:
        """Ciphertext size for a given plaintext size (length is leaked)."""
        if plaintext_length < 0:
            raise ParameterError("plaintext length must be non-negative")
        return plaintext_length + OVERHEAD

    def _tag(self, nonce: bytes, body: bytes, associated_data: bytes) -> bytes:
        material = (
            len(associated_data).to_bytes(8, "big")
            + associated_data + nonce + body
        )
        return hmac_sha256(self._mac_key, material)[:TAG_SIZE]
