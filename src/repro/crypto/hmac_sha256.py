"""HMAC-SHA256 implemented from scratch per RFC 2104 / FIPS 198-1.

HMAC is the workhorse of this library: it instantiates the paper's
pseudo-random function f, the chain step function, PRG expansion, and the
Feistel round functions.  RFC 4231 test vectors are exercised in
``tests/crypto/test_hmac.py``.
"""

from __future__ import annotations

from repro.crypto.sha256 import SHA256, sha256
from repro.errors import ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["HMACSHA256", "hmac_sha256"]

_BLOCK_SIZE = 64
_IPAD = bytes(0x36 for _ in range(_BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(_BLOCK_SIZE))


class HMACSHA256:
    """Incremental HMAC-SHA256 object.

    The key schedule (inner/outer padded keys) is computed once at
    construction; ``copy`` allows cheap reuse of a keyed instance across many
    messages, which the PRF layer exploits.
    """

    digest_size = 32

    def __init__(self, key: bytes, data: bytes = b"") -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise ParameterError("HMAC key must be bytes")
        key = bytes(key)
        if len(key) > _BLOCK_SIZE:
            key = sha256(key)
        key = key.ljust(_BLOCK_SIZE, b"\x00")
        self._outer_key = bytes(k ^ p for k, p in zip(key, _OPAD))
        self._inner = SHA256(bytes(k ^ p for k, p in zip(key, _IPAD)))
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb *data* into the MAC."""
        self._inner.update(data)

    def digest(self) -> bytes:
        """Return the 32-byte MAC of everything absorbed so far."""
        _record_op("hmac")
        outer = SHA256(self._outer_key)
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        """Return the MAC as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "HMACSHA256":
        """Return an independent copy sharing the absorbed state so far."""
        clone = HMACSHA256.__new__(HMACSHA256)
        clone._outer_key = self._outer_key
        clone._inner = self._inner.copy()
        return clone


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """One-shot HMAC-SHA256 of *data* under *key*."""
    return HMACSHA256(key, data).digest()
