"""ElGamal encryption over a safe-prime Schnorr group.

Scheme 1 stores, next to every masked index, ``F(r)`` — an IND-CPA
encryption of the masking nonce under a trapdoor permutation "(e.g. an
ElGamal encryption)".  Only the client holds the private key, so only the
client can recover ``r``; the server merely stores and returns ``F(r)``.

Nonces are fixed-size byte strings; they are embedded into the group via
the quadratic-residue encoding of :class:`~repro.crypto.numtheory.SchnorrGroup`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto.bytesutil import bytes_to_int, int_to_bytes
from repro.crypto.numtheory import (SchnorrGroup, generate_schnorr_group,
                                    invmod, rfc3526_group_1536)
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import CryptoError, ParameterError
from repro.obs.opcount import record as _record_op

__all__ = ["ElGamalCiphertext", "ElGamalPublicKey", "ElGamalKeyPair",
           "generate_keypair", "DEFAULT_GROUP_BITS"]

# 512-bit groups keep the pure-Python benchmarks responsive; real
# deployments would use >= 2048 bits.  The size is a constructor parameter
# everywhere, so nothing hard-codes this default.
DEFAULT_GROUP_BITS = 512


@dataclass(frozen=True)
class ElGamalCiphertext:
    """An ElGamal ciphertext (c1, c2) = (g^k, m * y^k)."""

    c1: int
    c2: int

    def serialize(self, modulus_bytes: int) -> bytes:
        """Fixed-width big-endian encoding (for bandwidth accounting)."""
        return (int_to_bytes(self.c1, modulus_bytes)
                + int_to_bytes(self.c2, modulus_bytes))

    @classmethod
    def deserialize(cls, data: bytes, modulus_bytes: int) -> "ElGamalCiphertext":
        """Invert :meth:`serialize`."""
        if len(data) != 2 * modulus_bytes:
            raise ParameterError("bad ElGamal ciphertext length")
        return cls(c1=bytes_to_int(data[:modulus_bytes]),
                   c2=bytes_to_int(data[modulus_bytes:]))


@dataclass(frozen=True)
class ElGamalPublicKey:
    """Public half: the group and y = g^x."""

    group: SchnorrGroup
    y: int

    @property
    def modulus_bytes(self) -> int:
        """Byte width of one group element."""
        return (self.group.p.bit_length() + 7) // 8

    @property
    def nonce_size(self) -> int:
        """Largest nonce (in bytes) that embeds injectively into the group."""
        # Nonce integers must land in [1, q]; staying 2 bytes under the
        # modulus width keeps every possible nonce strictly below q.
        return self.modulus_bytes - 2

    def encrypt_element(self, m: int, rng: RandomSource) -> ElGamalCiphertext:
        """Encrypt a group element."""
        if not self.group.contains(m):
            raise ParameterError("plaintext must be a subgroup element")
        _record_op("elgamal_encrypt")
        _record_op("modexp", 2)
        k = self.group.random_exponent(rng)
        c1 = pow(self.group.g, k, self.group.p)
        c2 = (m * pow(self.y, k, self.group.p)) % self.group.p
        return ElGamalCiphertext(c1, c2)

    def encrypt_nonce(self, nonce: bytes,
                      rng: RandomSource | None = None) -> ElGamalCiphertext:
        """Encrypt a byte-string nonce (the F(r) of Scheme 1)."""
        rng = rng if rng is not None else SystemRandomSource()
        if not 0 < len(nonce) <= self.nonce_size:
            raise ParameterError(
                f"nonce must be 1..{self.nonce_size} bytes for this group"
            )
        # Prefix a 0x01 byte so leading-zero nonces round-trip.
        value = bytes_to_int(b"\x01" + nonce)
        return self.encrypt_element(self.group.encode(value), rng)


@dataclass(frozen=True)
class ElGamalKeyPair:
    """Private key x plus the matching public key."""

    public: ElGamalPublicKey
    x: int

    def decrypt_element(self, ciphertext: ElGamalCiphertext) -> int:
        """Recover the group element from (c1, c2)."""
        group = self.public.group
        if not (0 < ciphertext.c1 < group.p and 0 < ciphertext.c2 < group.p):
            raise CryptoError("ciphertext components out of range")
        _record_op("elgamal_decrypt")
        _record_op("modexp")
        shared = pow(ciphertext.c1, self.x, group.p)
        return (ciphertext.c2 * invmod(shared, group.p)) % group.p

    def decrypt_nonce(self, ciphertext: ElGamalCiphertext) -> bytes:
        """Recover a nonce encrypted with :meth:`ElGamalPublicKey.encrypt_nonce`."""
        value = self.public.group.decode(self.decrypt_element(ciphertext))
        raw = int_to_bytes(value)
        if not raw or raw[0] != 0x01:
            raise CryptoError("decrypted value is not a framed nonce")
        return raw[1:]

    def to_json(self) -> str:
        """Serialize the full keypair (INCLUDING the private key) to JSON.

        Handle the result like any private key: this exists so the CLI and
        persistence layer can store the client's trapdoor key between
        sessions, not for transmission.
        """
        group = self.public.group
        return json.dumps({
            "format": "repro.elgamal/1",
            "p": hex(group.p), "q": hex(group.q), "g": hex(group.g),
            "y": hex(self.public.y), "x": hex(self.x),
        }, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ElGamalKeyPair":
        """Invert :meth:`to_json`, re-validating the group structure."""
        data = json.loads(payload)
        if data.get("format") != "repro.elgamal/1":
            raise ParameterError("unrecognized keypair format")
        group = SchnorrGroup(p=int(data["p"], 16), q=int(data["q"], 16),
                             g=int(data["g"], 16))
        x = int(data["x"], 16)
        y = int(data["y"], 16)
        if pow(group.g, x, group.p) != y:
            raise ParameterError("keypair is internally inconsistent")
        return cls(public=ElGamalPublicKey(group=group, y=y), x=x)


def generate_keypair(bits: int | None = None,
                     rng: RandomSource | None = None,
                     group: SchnorrGroup | None = None) -> ElGamalKeyPair:
    """Generate an ElGamal keypair.

    By default the keypair lives in the standard RFC 3526 1536-bit MODP
    group, so only an exponent is sampled — instant.  Pass ``bits`` to
    generate a *fresh* safe-prime group of that size instead (minutes in
    pure Python for realistic sizes; tests use 256-bit groups), or pass an
    explicit ``group``.
    """
    rng = rng if rng is not None else SystemRandomSource()
    if group is None:
        group = (rfc3526_group_1536() if bits is None
                 else generate_schnorr_group(bits, rng))
    x = group.random_exponent(rng)
    y = pow(group.g, x, group.p)
    return ElGamalKeyPair(public=ElGamalPublicKey(group=group, y=y), x=x)
