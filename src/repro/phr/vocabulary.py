"""Medical keyword vocabulary for the synthetic PHR corpus.

Real personal-health-record data is private (the reason PHR⁺ exists), so
the corpus generator draws from this fixed clinical vocabulary: condition
codes, symptoms, medications, and procedure terms.  The lists are small
but structured like real coding systems (prefix + code), which exercises
the same tag/index code paths as real ICD/ATC data would.
"""

from __future__ import annotations

__all__ = ["CONDITIONS", "SYMPTOMS", "MEDICATIONS", "PROCEDURES",
           "ALL_TERMS", "patient_keyword"]

CONDITIONS = [
    "cond:hypertension", "cond:diabetes-t2", "cond:asthma",
    "cond:copd", "cond:atrial-fibrillation", "cond:hypothyroidism",
    "cond:osteoarthritis", "cond:depression", "cond:anxiety",
    "cond:migraine", "cond:gerd", "cond:anemia", "cond:ckd-stage2",
    "cond:hyperlipidemia", "cond:obesity", "cond:eczema",
    "cond:allergic-rhinitis", "cond:gout", "cond:psoriasis",
    "cond:osteoporosis",
]

SYMPTOMS = [
    "sym:fever", "sym:cough", "sym:fatigue", "sym:headache",
    "sym:chest-pain", "sym:dyspnea", "sym:nausea", "sym:dizziness",
    "sym:back-pain", "sym:abdominal-pain", "sym:rash", "sym:insomnia",
    "sym:palpitations", "sym:joint-pain", "sym:sore-throat",
    "sym:weight-loss", "sym:edema", "sym:tremor", "sym:blurred-vision",
    "sym:tinnitus",
]

MEDICATIONS = [
    "med:metformin", "med:lisinopril", "med:atorvastatin",
    "med:levothyroxine", "med:amlodipine", "med:omeprazole",
    "med:salbutamol", "med:sertraline", "med:ibuprofen",
    "med:paracetamol", "med:warfarin", "med:insulin-glargine",
    "med:prednisolone", "med:amoxicillin", "med:bisoprolol",
    "med:furosemide", "med:gabapentin", "med:tramadol",
    "med:citalopram", "med:allopurinol",
]

PROCEDURES = [
    "proc:ecg", "proc:chest-xray", "proc:blood-panel", "proc:spirometry",
    "proc:colonoscopy", "proc:mri-brain", "proc:ultrasound-abdomen",
    "proc:vaccination-influenza", "proc:vaccination-tetanus",
    "proc:vaccination-yellow-fever", "proc:hba1c-test",
    "proc:lipid-panel", "proc:thyroid-panel", "proc:biopsy-skin",
    "proc:echocardiogram",
]

ALL_TERMS = CONDITIONS + SYMPTOMS + MEDICATIONS + PROCEDURES


def patient_keyword(patient_id: str) -> str:
    """The per-patient routing keyword (how a GP retrieves one record)."""
    return f"patient:{patient_id.strip().lower()}"
