"""Personal-health-record document model.

A :class:`HealthRecordEntry` is one clinical event (a visit, prescription,
or procedure).  It serializes to a :class:`~repro.core.documents.Document`
whose keyword set contains the patient routing keyword plus every clinical
term — which is exactly what the SSE schemes index.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.documents import Document
from repro.errors import ParameterError
from repro.phr.vocabulary import patient_keyword

__all__ = ["HealthRecordEntry"]


@dataclass(frozen=True)
class HealthRecordEntry:
    """One clinical event in a patient's record."""

    entry_id: int
    patient_id: str
    date: str  # ISO "YYYY-MM-DD"; kept as text, never parsed
    entry_type: str  # "visit" | "prescription" | "procedure"
    terms: frozenset[str] = field(default_factory=frozenset)
    notes: str = ""

    def __post_init__(self) -> None:
        if self.entry_id < 0:
            raise ParameterError("entry ids must be non-negative")
        if not self.patient_id:
            raise ParameterError("patient id must be non-empty")
        if self.entry_type not in ("visit", "prescription", "procedure"):
            raise ParameterError(f"unknown entry type {self.entry_type!r}")

    def to_document(self) -> Document:
        """Serialize for SSE storage: JSON body + clinical keyword set."""
        body = json.dumps({
            "patient": self.patient_id,
            "date": self.date,
            "type": self.entry_type,
            "terms": sorted(self.terms),
            "notes": self.notes,
        }, sort_keys=True).encode("utf-8")
        keywords = set(self.terms)
        keywords.add(patient_keyword(self.patient_id))
        keywords.add(f"type:{self.entry_type}")
        return Document(doc_id=self.entry_id, data=body,
                        keywords=frozenset(keywords))

    @classmethod
    def from_document_data(cls, entry_id: int,
                           data: bytes) -> "HealthRecordEntry":
        """Rebuild an entry from a decrypted document body."""
        payload = json.loads(data.decode("utf-8"))
        return cls(
            entry_id=entry_id,
            patient_id=payload["patient"],
            date=payload["date"],
            entry_type=payload["type"],
            terms=frozenset(payload["terms"]),
            notes=payload["notes"],
        )
