"""PHR⁺ application layer: records, vocabulary, corpus, and the facade."""

from repro.phr.app import PhrPlus
from repro.phr.corpus import CorpusSpec, generate_corpus, patient_ids
from repro.phr.records import HealthRecordEntry
from repro.phr.vocabulary import (ALL_TERMS, CONDITIONS, MEDICATIONS,
                                  PROCEDURES, SYMPTOMS, patient_keyword)

__all__ = [
    "ALL_TERMS",
    "CONDITIONS",
    "CorpusSpec",
    "HealthRecordEntry",
    "MEDICATIONS",
    "PROCEDURES",
    "PhrPlus",
    "SYMPTOMS",
    "generate_corpus",
    "patient_ids",
    "patient_keyword",
]
