"""PHR⁺ — the privacy-enhanced personal health record facade (paper §6).

Wraps any SSE client (Scheme 1, Scheme 2, or a baseline) with record-level
operations:

* ``upload_entries``   — initial record storage;
* ``add_entry``        — append a clinical event (an SSE update);
* ``patient_record``   — retrieve one patient's full record;
* ``find_by_term``     — clinical-term search across the population
  (e.g. the §6 journalist checking a vaccination).

The two §6 scenarios map onto the schemes exactly as the paper argues:
the *traveler* (search-heavy, broadband) fits Scheme 1; the *GP*
(interleaved retrieve→update) fits Scheme 2.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.api import SseClient
from repro.errors import ParameterError
from repro.phr.records import HealthRecordEntry
from repro.phr.vocabulary import patient_keyword

__all__ = ["PhrPlus"]


class PhrPlus:
    """A personal-health-record application over searchable encryption."""

    def __init__(self, sse_client: SseClient) -> None:
        self._client = sse_client
        self._stored_ids: set[int] = set()
        self._next_entry_id = 0

    @property
    def client(self) -> SseClient:
        """The underlying SSE client (exposed for stats/instrumentation)."""
        return self._client

    def _register_ids(self, entries: Sequence[HealthRecordEntry]) -> None:
        for entry in entries:
            if entry.entry_id in self._stored_ids:
                raise ParameterError(
                    f"entry id {entry.entry_id} already stored"
                )
        for entry in entries:
            self._stored_ids.add(entry.entry_id)
            self._next_entry_id = max(self._next_entry_id,
                                      entry.entry_id + 1)

    def allocate_entry_id(self) -> int:
        """Hand out the next unused entry id (client-side, as §5 requires)."""
        entry_id = self._next_entry_id
        self._next_entry_id += 1
        return entry_id

    def upload_entries(self, entries: Sequence[HealthRecordEntry]) -> None:
        """Initial Storage of a record collection."""
        self._register_ids(entries)
        self._client.store([entry.to_document() for entry in entries])

    def add_entry(self, entry: HealthRecordEntry) -> None:
        """Append one clinical event — an SSE metadata update."""
        self._register_ids([entry])
        self._client.add_documents([entry.to_document()])

    def patient_record(self, patient_id: str) -> list[HealthRecordEntry]:
        """Retrieve and decrypt one patient's entries, oldest first."""
        result = self._client.search(patient_keyword(patient_id))
        entries = [
            HealthRecordEntry.from_document_data(doc_id, data)
            for doc_id, data in zip(result.doc_ids, result.documents)
        ]
        return sorted(entries, key=lambda e: (e.date, e.entry_id))

    def find_by_term(self, term: str) -> list[HealthRecordEntry]:
        """Search the whole population for a clinical term."""
        result = self._client.search(term)
        return [
            HealthRecordEntry.from_document_data(doc_id, data)
            for doc_id, data in zip(result.doc_ids, result.documents)
        ]

    def gp_visit(self, patient_id: str, new_entry: HealthRecordEntry
                 ) -> list[HealthRecordEntry]:
        """The §6 GP workflow: retrieve the record, then store the update.

        Returns the record as it stood *before* the visit's new entry.
        """
        record = self.patient_record(patient_id)
        self.add_entry(new_entry)
        return record
