"""Synthetic PHR corpus generation (the substitute for real medical data).

Produces a population of patients, each with chronic conditions that
persist across entries and per-visit symptoms/medications drawn from the
clinical vocabulary.  Deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import HmacDrbg, RandomSource
from repro.errors import ParameterError
from repro.phr.records import HealthRecordEntry
from repro.phr.vocabulary import (CONDITIONS, MEDICATIONS, PROCEDURES,
                                  SYMPTOMS)

__all__ = ["CorpusSpec", "generate_corpus", "patient_ids"]


@dataclass(frozen=True)
class CorpusSpec:
    """Shape of a synthetic PHR corpus."""

    num_patients: int = 20
    entries_per_patient: int = 5
    seed: int = 1907

    def __post_init__(self) -> None:
        if self.num_patients < 1 or self.entries_per_patient < 1:
            raise ParameterError("corpus must have patients and entries")


def patient_ids(n: int) -> list[str]:
    """Deterministic patient identifiers p0000, p0001, ..."""
    return [f"p{i:04d}" for i in range(n)]


def _pick(rng: RandomSource, pool: list[str], count: int) -> set[str]:
    chosen: set[str] = set()
    guard = 0
    while len(chosen) < min(count, len(pool)):
        chosen.add(pool[rng.randint_below(len(pool))])
        guard += 1
        if guard > 50 * count:  # pragma: no cover
            break
    return chosen


def generate_corpus(spec: CorpusSpec,
                    rng: RandomSource | None = None
                    ) -> list[HealthRecordEntry]:
    """Generate the full entry list, ids dense in [0, patients*entries)."""
    rng = rng if rng is not None else HmacDrbg(spec.seed)
    entries: list[HealthRecordEntry] = []
    entry_id = 0
    for pid in patient_ids(spec.num_patients):
        # Chronic context: 1-3 conditions that appear in every entry.
        chronic = _pick(rng, CONDITIONS, 1 + rng.randint_below(3))
        for visit in range(spec.entries_per_patient):
            kind = ("visit", "prescription", "procedure")[
                rng.randint_below(3)
            ]
            terms = set(chronic)
            terms |= _pick(rng, SYMPTOMS, 1 + rng.randint_below(3))
            if kind == "prescription":
                terms |= _pick(rng, MEDICATIONS, 1 + rng.randint_below(2))
            if kind == "procedure":
                terms |= _pick(rng, PROCEDURES, 1)
            month = 1 + visit % 12
            entries.append(HealthRecordEntry(
                entry_id=entry_id,
                patient_id=pid,
                date=f"2009-{month:02d}-{1 + rng.randint_below(28):02d}",
                entry_type=kind,
                terms=frozenset(terms),
                notes=f"synthetic entry {visit} for {pid}",
            ))
            entry_id += 1
    return entries
