"""Span-attributed sampling profiler: where does wall time actually go?

Tracing (:mod:`repro.obs.trace`) answers "how long did span X take";
op accounting (:mod:`repro.obs.opcount`) answers "how many primitives ran".
Neither answers "which *code* is hot inside a span" — the question every
hot-path optimization on the ROADMAP starts from.  This module does, with
a deterministic sampling profiler:

* a background thread wakes on a fixed period (``1/hz`` seconds, no
  randomization — run-to-run sample counts are stable for stable
  workloads) and walks :func:`sys._current_frames`;
* every sampled stack is attributed to the sampled thread's innermost
  open span (via the span stacks :mod:`repro.obs.trace` maintains), so
  per-span *self time* falls out of the sample counts;
* aggregated stacks export in collapsed-stack ("flamegraph") format —
  one ``frame;frame;frame count`` line per distinct stack, root first,
  with the owning span as the root frame — ready for
  ``flamegraph.pl`` / speedscope / inferno without any converter.

Like the op recorder, the installed profiler is process-global
(:func:`install_profiler` / :func:`active_profiler`): the TCP server
answers ``PROFILE_REQUEST`` admin messages from whatever profiler the
process runs, with zero constructor plumbing.  ``python -m repro.cli
serve --profile`` starts one for the serving process.

Usage::

    profiler = SamplingProfiler(hz=97)
    with profiler:
        run_workload()
    print(profiler.collapsed())          # flamegraph-format lines
    profiler.span_self_times()           # {span: {"samples": n, "seconds": s}}

Overhead: each sample walks every live thread's stack once — at the
default 97 Hz that is well under 1% for the worker-pool sizes used here.
Threads parked in ``queue.get`` / ``accept`` are filtered by the idle
predicate so they do not drown the signal in wait frames.
"""

from __future__ import annotations

import json
import sys
import threading
import time

from repro.errors import ParameterError
from repro.obs.trace import span_stacks

__all__ = ["SamplingProfiler", "active_profiler", "format_span_table",
           "install_profiler", "profile_snapshot"]

#: Frames from these functions mean "parked, waiting for work" — samples
#: whose leaf lands here carry no optimization signal and are tallied
#: separately as idle instead of polluting the hot-stack output.
_IDLE_LEAVES = frozenset({
    "wait", "get", "accept", "recv", "recv_into", "select", "poll",
    "_recv_exactly", "sleep", "_wait_for_tstate_lock", "join",
})

#: No span open on the sampled thread.
_NO_SPAN = "(no span)"


def _frame_label(frame) -> str:
    """``module.function`` — stable across machines (no file paths)."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


class SamplingProfiler:
    """Deterministic wall-clock sampler attributing samples to spans.

    ``hz`` is the target sample rate; the sampler thread sleeps a fixed
    ``1/hz`` period between walks (an :class:`threading.Event` wait, so
    :meth:`stop` returns promptly).  ``max_stacks`` bounds the number of
    *distinct* collapsed stacks retained — past it, new stacks collapse
    into a ``(truncated)`` bucket so a pathological workload cannot grow
    the profile without bound.
    """

    def __init__(self, hz: float = 97.0, *, max_stacks: int = 10_000,
                 max_depth: int = 64) -> None:
        if hz <= 0:
            raise ParameterError("profiler rate must be positive")
        if max_stacks < 1 or max_depth < 1:
            raise ParameterError("profiler retention bounds must be positive")
        self.hz = hz
        self.period_s = 1.0 / hz
        self._max_stacks = max_stacks
        self._max_depth = max_depth
        self._lock = threading.Lock()
        # (span_name, (frame, frame, ...)) -> sample count; frames root
        # first.  Idle samples count per span without a stack.
        self._stacks: dict[tuple[str, tuple[str, ...]], int] = {}
        self._span_samples: dict[str, int] = {}
        self._idle_samples = 0
        self.samples_total = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_s: float | None = None
        self.wall_s = 0.0

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the sampler thread is active."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start sampling (idempotent) and enable span-stack tracking."""
        if self.running:
            return
        from repro.obs.trace import enable_span_tracking

        enable_span_tracking(True)
        self._stop.clear()
        self._started_s = time.perf_counter()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and release span-stack tracking (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self._started_s is not None:
            self.wall_s += time.perf_counter() - self._started_s
            self._started_s = None
        from repro.obs.trace import enable_span_tracking

        enable_span_tracking(False)

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling -----------------------------------------------------------

    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.period_s):
            self._sample_once(own_ident)

    def _sample_once(self, skip_ident: int) -> None:
        spans = span_stacks()
        frames = sys._current_frames()
        samples: list[tuple[str, tuple[str, ...], bool]] = []
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            idle = frame.f_code.co_name in _IDLE_LEAVES
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self._max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            stack.reverse()
            open_spans = spans.get(ident)
            span_name = open_spans[-1] if open_spans else _NO_SPAN
            samples.append((span_name, tuple(stack), idle))
        del frames  # drop frame references promptly
        with self._lock:
            for span_name, stack, idle in samples:
                self.samples_total += 1
                if idle:
                    self._idle_samples += 1
                    continue
                self._span_samples[span_name] = \
                    self._span_samples.get(span_name, 0) + 1
                key = (span_name, stack)
                if key not in self._stacks \
                        and len(self._stacks) >= self._max_stacks:
                    key = (span_name, ("(truncated)",))
                self._stacks[key] = self._stacks.get(key, 0) + 1

    # -- reading results ----------------------------------------------------

    def span_self_times(self) -> dict[str, dict[str, float]]:
        """Per-span self time: busy samples whose innermost span it was.

        ``{span: {"samples": n, "seconds": n * period}}``, sorted by
        descending sample count.  Seconds are the standard sampling
        estimate (count × period); idle (parked-thread) samples are
        excluded entirely.
        """
        with self._lock:
            counts = dict(self._span_samples)
        return {
            name: {"samples": count, "seconds": count * self.period_s}
            for name, count in sorted(counts.items(),
                                      key=lambda kv: -kv[1])
        }

    def collapsed(self, *, with_spans: bool = True) -> str:
        """The profile in collapsed-stack (flamegraph) format.

        One line per distinct stack: ``frame;frame;... count``, root
        first.  With *with_spans* (default) the owning span name is
        prepended as the root frame, so a flamegraph groups by span
        before code — self-time per span is the width of its subtree.
        """
        with self._lock:
            items = sorted(self._stacks.items())
        lines = []
        for (span_name, stack), count in items:
            frames = (span_name,) + stack if with_spans else stack
            lines.append(f"{';'.join(frames)} {count}")
        return "\n".join(lines)

    def snapshot(self) -> dict:
        """JSON-safe summary: rate, totals, span self times, hot stacks.

        The payload a ``PROFILE_REQUEST`` admin message is answered with
        (see :meth:`repro.net.tcp.TcpSseServer.stats`).
        """
        wall = self.wall_s
        if self._started_s is not None:
            wall += time.perf_counter() - self._started_s
        with self._lock:
            idle = self._idle_samples
        return {
            "hz": self.hz,
            "running": self.running,
            "wall_s": wall,
            "samples_total": self.samples_total,
            "idle_samples": idle,
            "span_self": self.span_self_times(),
            "collapsed": self.collapsed(),
        }

    def reset(self) -> None:
        """Drop every sample collected so far (the rate is kept)."""
        with self._lock:
            self._stacks.clear()
            self._span_samples.clear()
            self._idle_samples = 0
            self.samples_total = 0
            self.wall_s = 0.0
            if self._started_s is not None:
                self._started_s = time.perf_counter()


_active: SamplingProfiler | None = None


def active_profiler() -> SamplingProfiler | None:
    """The process-global profiler, if one is installed."""
    return _active


def install_profiler(profiler: SamplingProfiler | None
                     ) -> SamplingProfiler | None:
    """Install *profiler* process-globally; returns the previous one.

    Installation is process-wide like the op recorder's: the TCP server
    answers ``PROFILE_REQUEST`` from here, so embedding layers never
    thread a profiler through constructors.  Pass ``None`` to uninstall.
    """
    global _active
    previous = _active
    _active = profiler
    return previous


def profile_snapshot() -> dict:
    """The installed profiler's snapshot, or a disabled marker.

    Always JSON-serializable — this is the ``PROFILE_RESULT`` payload.
    """
    profiler = _active
    if profiler is None:
        return {"enabled": False}
    payload = profiler.snapshot()
    payload["enabled"] = True
    return payload


def format_span_table(snapshot: dict) -> str:
    """Human-readable per-span self-time table from a snapshot dict."""
    if not snapshot.get("enabled", True):
        return "(no profiler installed)"
    rows = [f"{'span':<24} {'samples':>8} {'self_s':>10}"]
    for name, row in snapshot.get("span_self", {}).items():
        rows.append(f"{name:<24} {row['samples']:>8} "
                    f"{row['seconds']:>10.3f}")
    return "\n".join(rows)


if __name__ == "__main__":  # pragma: no cover - debugging helper
    with SamplingProfiler(hz=199) as profiler:
        time.sleep(1.0)
    print(json.dumps(profiler.snapshot(), indent=2))
