"""End-to-end request tracing for the SSE service layer.

A *trace* follows one protocol request across every hop it touches: the
client's channel, the transport (including reconnect attempts), the
server's worker queue, the read/write lock, the scheme handler, and the
durable-storage flush.  Each hop records a *span* — a named, timed segment
with optional attributes (message type, retry attempt, crypto op counts).

Trace IDs are 8 opaque bytes minted by the client's
:class:`~repro.net.channel.Channel` and carried inside the wire frame
envelope (see :meth:`repro.net.messages.Message.serialize`), so the server
side of a TCP deployment stitches its spans onto the same ID the client
minted — export both sides' JSONL and join on ``trace_id``.

Design notes, matching :mod:`repro.obs.metrics`:

* **zero-overhead default** — components take ``tracer=None`` and skip
  everything; the module-level :func:`span` helper costs one thread-local
  read when no trace is active;
* **thread-local propagation** — the active trace is bound to the current
  thread (:func:`current_trace`), so deep layers (the durable server's
  flush, the retry loop) attach spans without any plumbing;
* **bounded retention** — finished traces live in a ring buffer
  (default 256) so a long-running server cannot leak memory into its own
  observability layer.

Usage::

    tracer = Tracer()
    channel = Channel(transport, tracer=tracer)      # client side
    server = TcpSseServer(handler, tracer=tracer)    # server side
    client.search("flu")
    for trace in tracer.finished_traces():
        print(trace.trace_id, [s.name for s in trace.spans])
    tracer.export_jsonl("traces.jsonl")
"""

from __future__ import annotations

import itertools
import json
import os
import struct
import threading
import time
from collections import deque

from repro.errors import ParameterError

__all__ = ["Span", "Trace", "Tracer", "NullTracer", "NULL_TRACER",
           "TRACE_ID_SIZE", "current_trace", "span",
           "enable_span_tracking", "span_stack", "span_stacks"]

#: Wire width of a trace ID in bytes.
TRACE_ID_SIZE = 8

_thread = threading.local()  # .trace — the Trace active on this thread

# Cross-thread span visibility for the sampling profiler: every thread
# with at least one open span keeps its stack of span names here, keyed
# by thread ident — the same key :func:`sys._current_frames` uses, so
# the profiler can join "what code is running" with "which span is it
# in".  Entries are appended/popped only by the owning thread (the GIL
# makes each mutation atomic); the profiler reads them best-effort.
# Stacks are maintained whenever a trace is active, and — so profiling
# works without tracing — whenever :func:`enable_span_tracking` turned
# tracking on globally.
_span_stacks: dict[int, list[str]] = {}
_span_tracking = False


def enable_span_tracking(enabled: bool) -> None:
    """Maintain per-thread span stacks even for untraced requests.

    The sampling profiler (:mod:`repro.obs.profile`) flips this on while
    it runs so samples can be attributed to the active span without a
    tracer attached.  Spans already opened keep their enter-time
    decision; only new spans see the change.
    """
    global _span_tracking
    _span_tracking = enabled


def span_stack(thread_ident: int) -> tuple[str, ...]:
    """The open-span names of one thread, outermost first (may be empty)."""
    stack = _span_stacks.get(thread_ident)
    # Copy defensively: the owning thread may push/pop concurrently.
    return tuple(stack) if stack else ()


def span_stacks() -> dict[int, tuple[str, ...]]:
    """Snapshot of every thread's open-span stack, keyed by thread ident."""
    return {ident: tuple(stack)
            for ident, stack in list(_span_stacks.items()) if stack}


class Span:
    """One named, timed segment of a trace."""

    __slots__ = ("name", "start_s", "duration_s", "attrs")

    def __init__(self, name: str, start_s: float, duration_s: float,
                 attrs: dict | None = None) -> None:
        self.name = name
        self.start_s = start_s
        self.duration_s = duration_s
        self.attrs = attrs if attrs is not None else {}

    def to_dict(self) -> dict:
        """JSON-safe representation (used by JSONL export and STATS)."""
        out = {"name": self.name, "start_s": self.start_s,
               "duration_s": self.duration_s}
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, duration_s={self.duration_s:.6f}, "
                f"attrs={self.attrs})")


class Trace:
    """All spans recorded for one request, keyed by its trace ID.

    Spans may be appended from several threads (client thread plus server
    worker in an in-process test); appends are lock-protected.  ``_refs``
    counts how many components have begun-but-not-finished the trace so the
    tracer retires it exactly once.
    """

    def __init__(self, trace_id: str, message_type: str) -> None:
        self.trace_id = trace_id
        self.message_type = message_type
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._refs = 0

    def add_span(self, span_: Span) -> None:
        """Append one completed span."""
        with self._lock:
            self.spans.append(span_)

    def span_names(self) -> set[str]:
        """The distinct span names recorded so far."""
        with self._lock:
            return {s.name for s in self.spans}

    def find_spans(self, name: str) -> list[Span]:
        """All spans with the given name, in recording order."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def to_dict(self) -> dict:
        """JSON-safe representation of the whole trace."""
        with self._lock:
            spans = [s.to_dict() for s in self.spans]
        return {"trace_id": self.trace_id,
                "message_type": self.message_type,
                "spans": spans}

    def __repr__(self) -> str:
        return (f"Trace({self.trace_id}, type={self.message_type}, "
                f"spans={len(self.spans)})")


def current_trace() -> Trace | None:
    """The trace bound to the calling thread, if any."""
    return getattr(_thread, "trace", None)


class _SpanContext:
    """Context manager measuring one span against the thread's trace.

    When no trace is active the context is inert: entering costs one
    thread-local read and nothing is recorded.
    """

    __slots__ = ("_name", "attrs", "_trace", "_start", "_stacked")

    def __init__(self, name: str, attrs: dict) -> None:
        self._name = name
        self.attrs = attrs
        self._trace: Trace | None = None
        self._start = 0.0
        self._stacked = False

    def __enter__(self) -> "_SpanContext":
        self._trace = current_trace()
        if self._trace is not None or _span_tracking:
            self._start = time.perf_counter()
            ident = threading.get_ident()
            stack = _span_stacks.get(ident)
            if stack is None:
                stack = _span_stacks[ident] = []
            stack.append(self._name)
            self._stacked = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._stacked:
            ident = threading.get_ident()
            stack = _span_stacks.get(ident)
            if stack:
                stack.pop()
                if not stack:
                    # Drop the empty entry so idle/retired threads do not
                    # accumulate in the registry for the process lifetime.
                    _span_stacks.pop(ident, None)
        if self._trace is not None:
            self._trace.add_span(Span(
                self._name, self._start,
                time.perf_counter() - self._start, self.attrs,
            ))

    def set(self, **attrs) -> None:
        """Attach attributes to the span (e.g. op-count deltas)."""
        self.attrs.update(attrs)


def span(name: str, **attrs) -> _SpanContext:
    """``with span("server.handle", type=...):`` — record one timed span.

    Attaches to whatever trace is active on the calling thread; a cheap
    no-op otherwise, so deep layers (storage flush, retry loop) call it
    unconditionally.
    """
    return _SpanContext(name, attrs)


class _Activation:
    """Binds a trace to the current thread for a ``with`` block."""

    __slots__ = ("_trace", "_previous")

    def __init__(self, trace: Trace | None) -> None:
        self._trace = trace
        self._previous: Trace | None = None

    def __enter__(self) -> Trace | None:
        self._previous = current_trace()
        _thread.trace = self._trace
        return self._trace

    def __exit__(self, *exc_info) -> None:
        _thread.trace = self._previous


class Tracer:
    """Mints trace IDs, tracks active traces, retains finished ones.

    One tracer per process side (client or server) is typical; sharing a
    single tracer across both sides of an in-process channel merges the
    spans of each request into one trace object directly.
    """

    def __init__(self, max_finished: int = 256) -> None:
        if max_finished < 1:
            raise ParameterError("tracer must retain at least one trace")
        self._lock = threading.Lock()
        self._active: dict[str, Trace] = {}
        self._finished: deque[Trace] = deque(maxlen=max_finished)
        # 4 random bytes distinguish tracers across processes; 4 counter
        # bytes distinguish requests within one.  Randomness is consumed
        # once, at construction, keeping per-request work deterministic.
        self._id_base = os.urandom(4)
        self._id_counter = itertools.count(1)

    def mint(self) -> bytes:
        """A fresh 8-byte trace ID."""
        return self._id_base + struct.pack(
            ">I", next(self._id_counter) & 0xFFFFFFFF)

    def begin(self, trace_id: bytes, message_type: str) -> Trace:
        """Get or create the active trace for *trace_id*.

        Each ``begin`` must be paired with one :meth:`finish`; the trace
        retires when the last participant finishes.
        """
        key = trace_id.hex()
        with self._lock:
            trace = self._active.get(key)
            if trace is None:
                trace = Trace(key, message_type)
                self._active[key] = trace
            trace._refs += 1
            return trace

    def finish(self, trace: Trace) -> None:
        """Release one participant's hold; retire the trace on the last."""
        with self._lock:
            trace._refs -= 1
            if trace._refs <= 0 and trace.trace_id in self._active:
                del self._active[trace.trace_id]
                self._finished.append(trace)

    def activate(self, trace: Trace | None) -> _Activation:
        """Bind *trace* to the current thread for a ``with`` block."""
        return _Activation(trace)

    def active_traces(self) -> list[Trace]:
        """Traces currently in flight."""
        with self._lock:
            return list(self._active.values())

    def finished_traces(self) -> list[Trace]:
        """The retained ring of completed traces, oldest first."""
        with self._lock:
            return list(self._finished)

    def export_jsonl(self, destination) -> int:
        """Write finished traces as JSON lines; returns the trace count.

        *destination* is a path or a writable text file object.
        """
        traces = self.finished_traces()
        if hasattr(destination, "write"):
            for trace in traces:
                destination.write(json.dumps(trace.to_dict(),
                                             sort_keys=True) + "\n")
        else:
            with open(destination, "w") as fh:
                for trace in traces:
                    fh.write(json.dumps(trace.to_dict(),
                                        sort_keys=True) + "\n")
        return len(traces)

    def summarize(self) -> dict[str, dict[str, dict[str, float]]]:
        """Per-message-type, per-span-name aggregate over finished traces.

        Returns ``{message_type: {span_name: {"count", "total_s",
        "mean_s", "max_s"}}}`` — the at-a-glance answer to "where does a
        search spend its time?".
        """
        summary: dict[str, dict[str, dict[str, float]]] = {}
        for trace in self.finished_traces():
            by_span = summary.setdefault(trace.message_type, {})
            for span_ in trace.to_dict()["spans"]:
                row = by_span.setdefault(span_["name"], {
                    "count": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0,
                })
                row["count"] += 1
                row["total_s"] += span_["duration_s"]
                row["max_s"] = max(row["max_s"], span_["duration_s"])
        for by_span in summary.values():
            for row in by_span.values():
                row["mean_s"] = row["total_s"] / row["count"]
        return summary


class NullTracer:
    """Drop-in no-op tracer for call sites that want one object anyway."""

    def mint(self) -> bytes:
        """A constant all-zero ID (never attached to a message)."""
        return b"\x00" * TRACE_ID_SIZE

    def begin(self, trace_id: bytes, message_type: str) -> None:
        """No trace is created."""
        return None

    def finish(self, trace) -> None:  # noqa: D102 - no-op
        pass

    def activate(self, trace) -> _Activation:
        """Binds nothing (clears any inherited trace for the block)."""
        return _Activation(None)

    def active_traces(self) -> list:
        """Always empty."""
        return []

    def finished_traces(self) -> list:
        """Always empty."""
        return []

    def export_jsonl(self, destination) -> int:
        """Writes nothing."""
        return 0

    def summarize(self) -> dict:
        """Always empty."""
        return {}


NULL_TRACER = NullTracer()
