"""Observability: wire-level metrics for the SSE service layer.

The paper measures protocols in rounds and bytes; a *deployment* of those
protocols needs a second instrument — what the service is doing right now
and how long requests take.  :mod:`repro.obs.metrics` provides the minimal
registry the TCP layer, channel, and CLI share: counters, gauges, and
latency histograms with a text snapshot formatter.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, Metrics,
                               NULL_METRICS, NullMetrics)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NULL_METRICS",
    "NullMetrics",
]
