"""Observability: metrics, request tracing, and crypto-op accounting.

The paper measures protocols in rounds and bytes; a *deployment* of those
protocols needs three more instruments:

* :mod:`repro.obs.metrics` — counters, gauges, and latency histograms
  shared by the TCP layer, channel, and CLI, with a text snapshot
  formatter;
* :mod:`repro.obs.trace` — end-to-end request traces whose IDs travel
  inside the wire envelope, with spans at every hop (client, transport
  retries, server queue, lock, handler, storage flush);
* :mod:`repro.obs.opcount` — exact crypto-operation counts (AES blocks,
  PRF evaluations, modexps, ...) so the paper's Table 1 asymptotics can
  be asserted instead of inferred from wall-clock noise;
* :mod:`repro.obs.profile` — a span-attributed sampling profiler that
  answers "which code is hot *inside* a span", with collapsed-stack
  (flamegraph) export and per-span self time.

All three share the same design rule: the default is a null object whose
overhead is a single global or thread-local read, so un-instrumented runs
pay nothing.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, Metrics,
                               NULL_METRICS, NullMetrics, nearest_rank)
from repro.obs.opcount import (NULL_OPS, NullOpCounter, OpCounter,
                               active_recorder, count_ops, diff_counts,
                               install_recorder, record)
from repro.obs.profile import (SamplingProfiler, active_profiler,
                               install_profiler, profile_snapshot)
from repro.obs.trace import (NULL_TRACER, NullTracer, Span, Trace, Tracer,
                             current_trace, span)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NULL_METRICS",
    "NullMetrics",
    "nearest_rank",
    "NULL_OPS",
    "NullOpCounter",
    "OpCounter",
    "active_recorder",
    "count_ops",
    "diff_counts",
    "install_recorder",
    "record",
    "SamplingProfiler",
    "active_profiler",
    "install_profiler",
    "profile_snapshot",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Trace",
    "Tracer",
    "current_trace",
    "span",
]
