"""A small, thread-safe metrics registry (counters, gauges, histograms).

The service layer (``repro.net.tcp``), the instrumented channel, and the
CLI all share one :class:`Metrics` registry.  The design goals, in order:

* **zero dependencies** — stdlib only, like everything else in ``repro``;
* **thread safety** — instruments are updated from worker-pool threads;
* **determinism** — nothing here consumes randomness or wall-clock time on
  its own; callers pass in the durations they measured;
* **cheap no-op** — :data:`NULL_METRICS` lets hot paths record
  unconditionally without an ``if`` at every site.

Naming follows the Prometheus conventions loosely (``requests_total``,
``request_seconds``) and labels are plain keyword arguments::

    metrics = Metrics()
    metrics.counter("requests_total", type="S2_SEARCH_REQUEST").inc()
    metrics.histogram("request_seconds", type="S2_SEARCH_REQUEST").observe(dt)
    print(metrics.render_text())

See ``docs/observability.md`` for the metric names the service layer
emits and what each one means.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.errors import ParameterError

__all__ = ["Counter", "Gauge", "Histogram", "Metrics", "NullMetrics",
           "NULL_METRICS", "nearest_rank"]

# Histograms keep a bounded window of raw samples for quantiles.  Past the
# cap, new observations overwrite the window round-robin: quantiles then
# reflect the most recent _SAMPLE_CAP observations, which is what a live
# dashboard wants anyway.  Count/sum/min/max always cover every sample.
_SAMPLE_CAP = 4096


def nearest_rank(ordered: list[float], q: float) -> float:
    """Quantile ``q`` in [0, 1] of an already-sorted sample list.

    Nearest-rank interpolation: ``ordered[round(q * (n - 1))]``, clamped
    to the valid index range; 0.0 for an empty list.  This is the single
    percentile definition shared by :class:`Histogram`,
    ``repro.bench.timing``, and the benchmark conftest, so a p95 in a
    ``BENCH_<name>.json`` means exactly what a p95 in ``stats()`` means
    (pinned by ``tests/obs/test_metrics.py``).
    """
    if not 0.0 <= q <= 1.0:
        raise ParameterError("quantile must be within [0, 1]")
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    # Prometheus exposition escaping: backslash first, then quotes and
    # newlines, so a value like `he said "\n"` stays one parseable line.
    def esc(v: str) -> str:
        return (v.replace("\\", "\\\\").replace('"', '\\"')
                .replace("\n", "\\n"))

    inner = ",".join(f'{k}="{esc(v)}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ParameterError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, active sessions)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract *amount* from the gauge."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value


class Histogram:
    """Sampled distribution with exact count/sum and windowed quantiles."""

    def __init__(self, sample_cap: int = _SAMPLE_CAP) -> None:
        if sample_cap < 1:
            raise ParameterError("histogram sample cap must be positive")
        self._lock = threading.Lock()
        self._cap = sample_cap
        self._samples: list[float] = []
        self._next_slot = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) < self._cap:
                self._samples.append(value)
            else:
                self._samples[self._next_slot] = value
                self._next_slot = (self._next_slot + 1) % self._cap

    @property
    def mean(self) -> float:
        """Arithmetic mean over *all* observations (not just the window)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Quantile ``q`` in [0, 1] over the retained sample window.

        Nearest-rank on the sorted window; 0.0 when nothing was observed.
        """
        with self._lock:
            ordered = sorted(self._samples)
        return nearest_rank(ordered, q)

    @property
    def p50(self) -> float:
        """Median of the sample window."""
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile of the sample window."""
        return self.quantile(0.95)


class Metrics:
    """Registry of named, labeled instruments.

    Instruments are created on first use and live for the registry's
    lifetime.  A (name, labels) pair always maps to the same instrument, so
    concurrent callers share state; asking for the same name with a
    different instrument kind is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]],
                                Counter | Gauge | Histogram] = {}

    def _get(self, kind, name: str, labels: dict[str, str]):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = kind()
                self._instruments[key] = instrument
            elif not isinstance(instrument, kind):
                raise ParameterError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter (name, labels)."""
        return self._get(Counter, name, labels)

    def total(self, name: str) -> int:
        """Sum of one counter's value across all of its label sets.

        The cross-label rollup the bandwidth assertions need: e.g.
        ``total("bytes_sent_total")`` over every ``{type=...}`` series.
        Returns 0 for an unknown name; raises if *name* is registered as
        a non-counter instrument.
        """
        with self._lock:
            items = list(self._instruments.items())
        total = 0
        for (inst_name, _), inst in items:
            if inst_name != name:
                continue
            if not isinstance(inst, Counter):
                raise ParameterError(
                    f"metric {name!r} is {type(inst).__name__}, not Counter")
            total += inst.value
        return total

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge (name, labels)."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the histogram (name, labels)."""
        return self._get(Histogram, name, labels)

    def collect(self) -> Iterable[tuple[str, tuple[tuple[str, str], ...],
                                        Counter | Gauge | Histogram]]:
        """Snapshot of (name, label-key, instrument), sorted by name."""
        with self._lock:
            items = list(self._instruments.items())
        return sorted(((name, key, inst) for (name, key), inst in items),
                      key=lambda row: (row[0], row[1]))

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """Flat dict of current values (histograms expand to sub-keys)."""
        out: dict[str, float | dict[str, float]] = {}
        for name, key, inst in self.collect():
            full = name + _format_labels(key)
            if isinstance(inst, Histogram):
                out[full] = {"count": inst.count, "sum": inst.sum,
                             "mean": inst.mean, "p50": inst.p50,
                             "p95": inst.p95}
            else:
                out[full] = inst.value
        return out

    def render_text(self) -> str:
        """Human/scrape-friendly one-line-per-instrument snapshot."""
        lines: list[str] = []
        for name, key, inst in self.collect():
            full = name + _format_labels(key)
            if isinstance(inst, Counter):
                lines.append(f"{full} {inst.value}")
            elif isinstance(inst, Gauge):
                value = inst.value
                text = f"{value:g}" if value != int(value) else str(int(value))
                lines.append(f"{full} {text}")
            else:
                lines.append(
                    f"{full} count={inst.count} mean={inst.mean:.6f} "
                    f"p50={inst.p50:.6f} p95={inst.p95:.6f}"
                )
        return "\n".join(lines)


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass

    def set(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass

    value = 0.0
    count = 0


class NullMetrics:
    """Drop-in no-op registry so hot paths never branch on 'metrics on?'."""

    _instrument = _NullInstrument()

    def counter(self, name: str, **labels: str) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return self._instrument

    gauge = counter
    histogram = counter

    def total(self, name: str) -> int:
        """Always zero."""
        return 0

    def collect(self):
        """No instruments, ever."""
        return ()

    def snapshot(self) -> dict:
        """Empty snapshot."""
        return {}

    def render_text(self) -> str:
        """Empty snapshot text."""
        return ""


NULL_METRICS = NullMetrics()
