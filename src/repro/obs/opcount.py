"""Crypto operation accounting: count primitives, not seconds.

The paper's headline claim is *computational* efficiency — Table 1 states
search and update costs in cryptographic operations (PRF evaluations,
block-cipher calls, exponentiations), not milliseconds.  Wall-clock numbers
from the pure-Python substrate conflate interpreter overhead with protocol
cost; an exact op count does not.  This module lets a benchmark (or the
live server) ask "how many AES blocks / PRF evaluations / modexps did that
search actually perform?" and assert the paper's asymptotics directly.

Design, mirroring :mod:`repro.obs.metrics`:

* **zero-overhead default** — primitives call :func:`record`
  unconditionally; with the default :data:`NULL_OPS` recorder installed
  that is one global read and a no-op method call, far below the cost of
  any primitive being counted;
* **thread awareness** — an :class:`OpCounter` keeps one plain dict per
  recording thread (no lock on the hot path), so the service layer can
  attribute the ops of one request to the worker thread that ran it via
  :meth:`OpCounter.thread_snapshot` deltas;
* **scoping** — :func:`count_ops` installs a fresh counter for a ``with``
  block and restores the previous recorder on exit.

Op names are short stable strings; the full vocabulary lives in
``docs/observability.md``:

``aes_block``, ``sha256_compress``, ``hmac``, ``prf_eval``, ``prg_expand``,
``feistel_round``, ``chain_step``, ``modexp``, ``elgamal_encrypt``,
``elgamal_decrypt``.

Usage::

    from repro.obs.opcount import count_ops

    with count_ops() as ops:
        client.search("flu")
    print(ops.snapshot())   # {'prf_eval': 9, 'sha256_compress': 40, ...}
"""

from __future__ import annotations

import threading

__all__ = ["OpCounter", "NullOpCounter", "NULL_OPS", "count_ops",
           "active_recorder", "install_recorder", "record", "diff_counts"]


def diff_counts(after: dict[str, int], before: dict[str, int]
                ) -> dict[str, int]:
    """Ops performed between two snapshots (zero-count entries dropped).

    Pairs with :meth:`OpCounter.thread_snapshot`: snapshot before and after
    a request handler runs and the difference is that request's op bill.
    """
    return {op: n - before.get(op, 0) for op, n in after.items()
            if n - before.get(op, 0) > 0}


class OpCounter:
    """Thread-aware operation counter.

    Each recording thread owns a private dict (updated without locking);
    :meth:`snapshot` merges all of them under a registry lock.  Counts are
    monotonically increasing until :meth:`reset`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._per_thread: list[dict[str, int]] = []

    def _thread_counts(self) -> dict[str, int]:
        counts = getattr(self._local, "counts", None)
        if counts is None:
            counts = {}
            self._local.counts = counts
            with self._lock:
                self._per_thread.append(counts)
        return counts

    def add(self, op: str, n: int = 1) -> None:
        """Record *n* occurrences of operation *op* on this thread."""
        counts = getattr(self._local, "counts", None)
        if counts is None:
            counts = self._thread_counts()
        counts[op] = counts.get(op, 0) + n

    def thread_snapshot(self) -> dict[str, int]:
        """Copy of the *calling thread's* counts only.

        The service layer takes one before and one after a handler runs;
        the difference is exactly the ops that request performed, however
        many other worker threads were recording concurrently.
        """
        return dict(self._thread_counts())

    def snapshot(self) -> dict[str, int]:
        """Merged counts across every thread that ever recorded."""
        with self._lock:
            per_thread = list(self._per_thread)
        merged: dict[str, int] = {}
        for counts in per_thread:
            # Copy before iterating: the owning thread may still be writing.
            for op, n in list(counts.items()):
                merged[op] = merged.get(op, 0) + n
        return merged

    def get(self, op: str) -> int:
        """Merged count for one operation (0 if never recorded)."""
        return self.snapshot().get(op, 0)

    def total(self) -> int:
        """Sum of all counts across all ops and threads."""
        return sum(self.snapshot().values())

    def reset(self) -> None:
        """Zero every thread's counts."""
        with self._lock:
            for counts in self._per_thread:
                counts.clear()


class NullOpCounter:
    """Recorder that drops everything — the zero-overhead default."""

    def add(self, op: str, n: int = 1) -> None:  # noqa: D102 - no-op
        pass

    def thread_snapshot(self) -> dict[str, int]:
        """Always empty."""
        return {}

    def snapshot(self) -> dict[str, int]:
        """Always empty."""
        return {}

    def get(self, op: str) -> int:
        """Always zero."""
        return 0

    def total(self) -> int:
        """Always zero."""
        return 0

    def reset(self) -> None:  # noqa: D102 - no-op
        pass


NULL_OPS = NullOpCounter()

_active: OpCounter | NullOpCounter = NULL_OPS


def active_recorder() -> OpCounter | NullOpCounter:
    """The recorder every primitive currently reports to."""
    return _active


def install_recorder(recorder: OpCounter | NullOpCounter
                     ) -> OpCounter | NullOpCounter:
    """Install *recorder* globally; returns the previous one.

    Installation is process-wide on purpose: crypto primitives run on
    whatever thread calls them, and the recorder separates threads itself.
    Prefer the :func:`count_ops` context manager for scoped use.
    """
    global _active
    previous = _active
    _active = recorder if recorder is not None else NULL_OPS
    return previous


def record(op: str, n: int = 1) -> None:
    """Hot-path hook the crypto primitives call; no-op by default."""
    _active.add(op, n)


class count_ops:
    """``with count_ops() as ops:`` — scoped operation accounting.

    Installs a fresh :class:`OpCounter` (or the one passed in) for the
    duration of the block and restores the previous recorder afterwards.
    """

    def __init__(self, counter: OpCounter | None = None) -> None:
        self.counter = counter if counter is not None else OpCounter()
        self._previous: OpCounter | NullOpCounter | None = None

    def __enter__(self) -> OpCounter:
        self._previous = install_recorder(self.counter)
        return self.counter

    def __exit__(self, *exc_info) -> None:
        install_recorder(self._previous)
