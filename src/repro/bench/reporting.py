"""Paper-style table formatting for benchmark output.

Every bench prints its reproduction of a table or figure through these
helpers so EXPERIMENTS.md can be assembled from captured stdout.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_header"]


def format_header(title: str) -> str:
    """A banner line naming the paper artifact being regenerated."""
    rule = "=" * max(len(title), 8)
    return f"\n{rule}\n{title}\n{rule}"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-padded columns."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                columns[i].append(f"{cell:.4g}")
            else:
                columns[i].append(str(cell))
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(
        columns[i][0].ljust(widths[i]) for i in range(len(columns))
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    n_rows = len(columns[0]) - 1
    for r in range(1, n_rows + 1):
        lines.append("  ".join(
            columns[i][r].ljust(widths[i]) for i in range(len(columns))
        ))
    return "\n".join(lines)
