"""Paper-style table formatting and machine-readable benchmark output.

Every bench prints its reproduction of a table or figure through these
helpers so EXPERIMENTS.md can be assembled from captured stdout.  Next to
each module's human tables, :func:`write_bench_json` maintains a
``BENCH_<name>.json`` document (throughput, latency quantiles, crypto op
counts) so CI and regression tooling can diff runs without parsing text.
"""

from __future__ import annotations

import json
from typing import Sequence

__all__ = ["format_table", "format_header", "write_bench_json"]


def write_bench_json(path: str, key: str, payload: dict) -> None:
    """Merge *payload* under *key* into the JSON document at *path*.

    The document maps test names to result objects; repeated writes for
    the same key merge at the top level, so the timing section written by
    the conftest hook and any op-count section written by the test itself
    land in one entry.  A missing or corrupt file starts fresh.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        doc = {}
    if not isinstance(doc, dict):
        doc = {}
    entry = doc.setdefault(key, {})
    entry.update(payload)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_header(title: str) -> str:
    """A banner line naming the paper artifact being regenerated."""
    rule = "=" * max(len(title), 8)
    return f"\n{rule}\n{title}\n{rule}"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-padded columns."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                columns[i].append(f"{cell:.4g}")
            else:
                columns[i].append(str(cell))
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(
        columns[i][0].ljust(widths[i]) for i in range(len(columns))
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    n_rows = len(columns[0]) - 1
    for r in range(1, n_rows + 1):
        lines.append("  ".join(
            columns[i][r].ljust(widths[i]) for i in range(len(columns))
        ))
    return "\n".join(lines)
