"""Timing helpers for the benchmark harness.

``pytest-benchmark`` handles per-function statistics; these helpers cover
the sweep-style experiments (cost vs. parameter curves) that need one
number per configuration rather than a distribution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import nearest_rank

__all__ = ["Measurement", "measure", "repeat_measure"]


@dataclass(frozen=True)
class Measurement:
    """One timed call: wall-clock seconds plus the call's return value."""

    seconds: float
    value: object


def measure(fn: Callable[[], object]) -> Measurement:
    """Time a single call with the monotonic high-resolution clock."""
    start = time.perf_counter()
    value = fn()
    return Measurement(seconds=time.perf_counter() - start, value=value)


def repeat_measure(fn: Callable[[], object], repeats: int = 5) -> float:
    """Median wall-clock seconds over *repeats* calls (discards values).

    The median is :func:`repro.obs.metrics.nearest_rank` at q=0.5 — the
    same interpolation the metrics histograms and the bench JSON use, so
    every percentile in the repo means the same thing.
    """
    times = sorted(measure(fn).seconds for _ in range(repeats))
    return nearest_rank(times, 0.5)
