"""``repro-bench-diff``: compare bench runs and gate on regressions.

The ROADMAP's crypto-vectorization item calls the per-op tallies in
``BENCH_<name>.json`` "the regression gate" — this module makes that gate
executable.  It loads one or more bench documents, compares them against
committed baselines (``benchmarks/baselines/``), prints a per-metric
delta table, and exits nonzero when a gated metric regressed beyond its
threshold.

What is gated vs. informational:

* **crypto-op tallies** (``crypto_ops``) are near-deterministic — every
  benchmark drives seeded RNGs — so they gate by default.  A regression
  is an op whose count grew by more than the relative threshold AND by
  more than an absolute floor (tiny counts flap on cache warmth, e.g. a
  scheme-2 chain checkpoint landing differently under thread
  scheduling).  A *new* op appearing above the floor also gates: a hot
  path silently picking up, say, ``modexp`` calls is exactly what the
  gate exists to catch.  Missing tests or missing bench files gate too —
  coverage disappearing is a regression of the gate itself.
* **timing percentiles** (``timing``) are machine- and load-dependent,
  so they print in the delta table but only gate under ``--gate-timing``
  (meant for a quiet dedicated box, not shared CI runners).

Per-bench tolerance: benches that exercise thread scheduling
(``concurrent_clients``, ``shard_scaling``) get a wider default op
tolerance because client-side cache warmth varies with interleaving; the
single-threaded protocol benches stay tight.

Usage::

    repro-bench-diff --smoke                 # CI gate after make bench-smoke
    repro-bench-diff --baseline-dir benchmarks/baselines/smoke \
        --current-dir benchmarks --ops-threshold 0.10
    repro-bench-diff --smoke --json deltas.json --output deltas.txt

Exit status: 0 = no gated regression, 1 = regressions found, 2 = cannot
compare (missing directories, unreadable documents).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.reporting import format_table

__all__ = ["Delta", "load_bench", "diff_benches", "format_deltas", "main",
           "DEFAULT_OPS_THRESHOLD", "DEFAULT_OPS_MIN_COUNT",
           "BENCH_OPS_TOLERANCE"]

#: Relative growth in an op tally that counts as a regression (10%).
DEFAULT_OPS_THRESHOLD = 0.10

#: Absolute growth floor: tallies must also grow by at least this many
#: calls, so a 3-call op jumping to 4 never trips a 10% gate.
DEFAULT_OPS_MIN_COUNT = 32

#: Timing regression threshold used by ``--gate-timing`` (25%).
DEFAULT_TIMING_THRESHOLD = 0.25

#: Per-bench op-tolerance overrides (bench name -> relative threshold).
#: Scheduling-sensitive benches interleave client threads, so per-thread
#: LRU warmth — and with it the PRF/chain tallies — varies run to run.
BENCH_OPS_TOLERANCE = {
    "concurrent_clients": 0.50,
    "shard_scaling": 0.50,
}

#: Timing sub-metrics where *larger* is worse; ops_per_s is the inverse.
_TIME_UP_IS_BAD = ("mean_s", "p50_s", "p95_s")


def load_bench(path: str) -> dict:
    """One BENCH_<name>.json document as a dict (raises on bad JSON)."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: bench document must be a JSON object")
    return doc


def _bench_name(filename: str) -> str:
    return filename.removeprefix("BENCH_").removesuffix(".json")


def _discover(directory: str) -> dict[str, str]:
    """Map bench name -> path for every BENCH_*.json in *directory*."""
    out = {}
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            out[_bench_name(entry)] = os.path.join(directory, entry)
    return out


class Delta:
    """One compared metric: where it came from and whether it gates."""

    __slots__ = ("bench", "test", "metric", "baseline", "current",
                 "change", "gated", "regressed", "note")

    def __init__(self, bench: str, test: str, metric: str,
                 baseline: float | None, current: float | None,
                 *, gated: bool, regressed: bool, note: str = "") -> None:
        self.bench = bench
        self.test = test
        self.metric = metric
        self.baseline = baseline
        self.current = current
        if baseline and current is not None:
            self.change = (current - baseline) / baseline
        else:
            self.change = None
        self.gated = gated
        self.regressed = regressed
        self.note = note

    def to_dict(self) -> dict:
        return {"bench": self.bench, "test": self.test,
                "metric": self.metric, "baseline": self.baseline,
                "current": self.current, "change": self.change,
                "gated": self.gated, "regressed": self.regressed,
                "note": self.note}


def _ops_regressed(base: int, cur: int, threshold: float,
                   min_count: int) -> bool:
    growth = cur - base
    return growth > min_count and growth > base * threshold


def _diff_ops(bench: str, test: str, base_ops: dict, cur_ops: dict,
              threshold: float, min_count: int) -> list[Delta]:
    deltas = []
    for op in sorted(set(base_ops) | set(cur_ops)):
        base = int(base_ops.get(op, 0))
        cur = int(cur_ops.get(op, 0))
        if base == cur:
            continue
        regressed = _ops_regressed(base, cur, threshold, min_count)
        note = ""
        if op not in base_ops:
            note = "new op"
        elif op not in cur_ops:
            note = "op gone"
        deltas.append(Delta(bench, test, f"ops.{op}", base, cur,
                            gated=True, regressed=regressed, note=note))
    return deltas


def _diff_timing(bench: str, test: str, base_t: dict, cur_t: dict,
                 gate: bool, threshold: float) -> list[Delta]:
    deltas = []
    for metric in (*_TIME_UP_IS_BAD, "ops_per_s"):
        base = base_t.get(metric)
        cur = cur_t.get(metric)
        if base is None or cur is None or base == 0:
            continue
        change = (cur - base) / base
        if metric in _TIME_UP_IS_BAD:
            regressed = gate and change > threshold
        else:
            regressed = gate and change < -threshold
        # Unchanged timing to the sixth decimal is noise, not signal —
        # keep the table readable.
        if abs(change) < 0.005:
            continue
        deltas.append(Delta(bench, test, f"timing.{metric}", base, cur,
                            gated=gate, regressed=regressed))
    return deltas


def diff_benches(baseline: dict[str, str], current: dict[str, str],
                 *, ops_threshold: float = DEFAULT_OPS_THRESHOLD,
                 ops_min_count: int = DEFAULT_OPS_MIN_COUNT,
                 gate_timing: bool = False,
                 timing_threshold: float = DEFAULT_TIMING_THRESHOLD,
                 ) -> list[Delta]:
    """Compare every baseline bench against its current counterpart.

    *baseline* and *current* map bench name -> JSON path (see
    :func:`_discover`).  The baseline set defines coverage: a bench or
    test present in the baseline but absent from the current run is a
    gated regression.  Benches only present in the current run are
    reported informationally (they have no baseline to regress against).
    """
    deltas: list[Delta] = []
    for bench in sorted(set(baseline) | set(current)):
        if bench not in current:
            deltas.append(Delta(bench, "-", "bench", None, None,
                                gated=True, regressed=True,
                                note="bench missing from current run"))
            continue
        if bench not in baseline:
            deltas.append(Delta(bench, "-", "bench", None, None,
                                gated=False, regressed=False,
                                note="no baseline yet"))
            continue
        base_doc = load_bench(baseline[bench])
        cur_doc = load_bench(current[bench])
        threshold = max(ops_threshold,
                        BENCH_OPS_TOLERANCE.get(bench, 0.0))
        for test in sorted(k for k in base_doc if not k.startswith("_")):
            if test not in cur_doc:
                deltas.append(Delta(bench, test, "test", None, None,
                                    gated=True, regressed=True,
                                    note="test missing from current run"))
                continue
            base_entry, cur_entry = base_doc[test], cur_doc[test]
            deltas.extend(_diff_ops(
                bench, test,
                base_entry.get("crypto_ops", {}),
                cur_entry.get("crypto_ops", {}),
                threshold, ops_min_count))
            deltas.extend(_diff_timing(
                bench, test,
                base_entry.get("timing", {}),
                cur_entry.get("timing", {}),
                gate_timing, timing_threshold))
        for test in sorted(k for k in cur_doc
                           if not k.startswith("_") and k not in base_doc):
            deltas.append(Delta(bench, test, "test", None, None,
                                gated=False, regressed=False,
                                note="new test (no baseline)"))
    return deltas


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def format_deltas(deltas: list[Delta]) -> str:
    """The per-metric delta table, regressions flagged in the last column."""
    if not deltas:
        return "bench-diff: no differences against the baselines"
    rows = []
    for d in deltas:
        change = "-" if d.change is None else f"{d.change:+.1%}"
        flag = "REGRESSED" if d.regressed else ("" if d.gated else "info")
        rows.append((d.bench, d.test, d.metric, _fmt(d.baseline),
                     _fmt(d.current), change, d.note or "", flag))
    return format_table(
        ("bench", "test", "metric", "baseline", "current", "change",
         "note", ""),
        rows)


def _describe_meta(paths: dict[str, str]) -> str:
    """One line naming the commit/timestamp a set of documents came from."""
    for path in paths.values():
        try:
            meta = load_bench(path).get("_meta")
        except (OSError, ValueError):
            continue
        if isinstance(meta, dict):
            return (f"commit {meta.get('git_commit', 'unknown')[:12]} "
                    f"at {meta.get('timestamp_utc', 'unknown')}")
    return "no run metadata"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (console script ``repro-bench-diff``)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench-diff",
        description="Diff BENCH_<name>.json runs against committed "
                    "baselines and exit nonzero on regressions.")
    parser.add_argument("benches", nargs="*",
                        help="bench names to compare (default: every "
                             "bench present in the baseline dir)")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory of baseline BENCH_*.json files")
    parser.add_argument("--current-dir", default="benchmarks",
                        help="directory of freshly produced BENCH_*.json "
                             "files (default: benchmarks/)")
    parser.add_argument("--smoke", action="store_true",
                        help="compare against the committed smoke "
                             "baselines (benchmarks/baselines/smoke)")
    parser.add_argument("--ops-threshold", type=float,
                        default=DEFAULT_OPS_THRESHOLD,
                        help="relative crypto-op growth that fails the "
                             "gate (default %(default)s)")
    parser.add_argument("--ops-min-count", type=int,
                        default=DEFAULT_OPS_MIN_COUNT,
                        help="absolute op-growth floor below which the "
                             "relative gate is ignored "
                             "(default %(default)s)")
    parser.add_argument("--gate-timing", action="store_true",
                        help="also gate on timing percentiles (meant for "
                             "a quiet dedicated machine)")
    parser.add_argument("--timing-threshold", type=float,
                        default=DEFAULT_TIMING_THRESHOLD,
                        help="relative timing regression for "
                             "--gate-timing (default %(default)s)")
    parser.add_argument("--json", metavar="PATH",
                        help="additionally write the deltas as JSON")
    parser.add_argument("--output", metavar="PATH",
                        help="additionally write the delta table to a "
                             "file (CI artifact)")
    args = parser.parse_args(argv)

    baseline_dir = args.baseline_dir
    if baseline_dir is None:
        baseline_dir = (os.path.join("benchmarks", "baselines", "smoke")
                        if args.smoke
                        else os.path.join("benchmarks", "baselines"))
    if not os.path.isdir(baseline_dir):
        print(f"bench-diff: baseline directory {baseline_dir!r} does not "
              f"exist", file=sys.stderr)
        return 2
    if not os.path.isdir(args.current_dir):
        print(f"bench-diff: current directory {args.current_dir!r} does "
              f"not exist", file=sys.stderr)
        return 2
    baseline = _discover(baseline_dir)
    current = _discover(args.current_dir)
    if args.benches:
        unknown = [b for b in args.benches if b not in baseline]
        if unknown:
            print(f"bench-diff: no baseline for {', '.join(unknown)} "
                  f"(have: {', '.join(sorted(baseline)) or 'none'})",
                  file=sys.stderr)
            return 2
        baseline = {b: baseline[b] for b in args.benches}
        current = {b: current[b] for b in args.benches if b in current}
    else:
        # The baseline set defines the gate; newer benches without
        # baselines are reported but never compared.
        current = {b: p for b, p in current.items() if b in baseline}
    if not baseline:
        print(f"bench-diff: no BENCH_*.json baselines under "
              f"{baseline_dir!r}", file=sys.stderr)
        return 2

    try:
        deltas = diff_benches(
            baseline, current,
            ops_threshold=args.ops_threshold,
            ops_min_count=args.ops_min_count,
            gate_timing=args.gate_timing,
            timing_threshold=args.timing_threshold)
    except (OSError, ValueError) as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2

    header = (f"bench-diff: baseline [{_describe_meta(baseline)}] "
              f"vs current [{_describe_meta(current)}]")
    table = format_deltas(deltas)
    regressions = [d for d in deltas if d.regressed]
    verdict = (f"{len(regressions)} gated regression(s)" if regressions
               else "no gated regressions")
    report = f"{header}\n{table}\n{verdict}"
    print(report)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(report + "\n")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"deltas": [d.to_dict() for d in deltas],
                       "regressions": len(regressions)},
                      fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
