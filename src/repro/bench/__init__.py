"""Benchmark harness utilities: timing, complexity fits, table formatting."""

from repro.bench.fits import MODELS, FitResult, best_fit, fit_model
from repro.bench.reporting import format_header, format_table
from repro.bench.timing import Measurement, measure, repeat_measure

__all__ = [
    "FitResult",
    "MODELS",
    "Measurement",
    "best_fit",
    "fit_model",
    "format_header",
    "format_table",
    "measure",
    "repeat_measure",
]
