"""Benchmark harness utilities: timing, fits, reporting, regression diffs.

:mod:`repro.bench.diff` (the ``repro-bench-diff`` regression gate) is
deliberately NOT re-exported here: it doubles as a ``python -m
repro.bench.diff`` entry point, and importing it from the package
``__init__`` would trip the runpy double-import warning on every CI run.
Import it directly: ``from repro.bench.diff import diff_benches``.
"""

from repro.bench.fits import MODELS, FitResult, best_fit, fit_model
from repro.bench.reporting import format_header, format_table
from repro.bench.timing import Measurement, measure, repeat_measure

__all__ = [
    "FitResult",
    "MODELS",
    "Measurement",
    "best_fit",
    "fit_model",
    "format_header",
    "format_table",
    "measure",
    "repeat_measure",
]
