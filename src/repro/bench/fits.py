"""Complexity-model fitting for the scaling benchmarks.

The paper's claims are asymptotic (O(log u) vs O(n)); the benchmarks verify
them by measuring cost over a parameter sweep and asking which model —
constant, logarithmic, linear, n·log n — explains the curve best under
least squares.  ``best_fit`` returns the winning model name, which the
EXPERIMENTS.md tables quote directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ParameterError

__all__ = ["FitResult", "fit_model", "best_fit", "MODELS"]

Model = Callable[[float], float]

MODELS: dict[str, Model] = {
    "O(1)": lambda n: 1.0,
    "O(log n)": lambda n: math.log2(max(n, 2.0)),
    "O(n)": lambda n: n,
    "O(n log n)": lambda n: n * math.log2(max(n, 2.0)),
}


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of measurements to one complexity model."""

    model: str
    scale: float
    intercept: float
    r_squared: float


def fit_model(xs: Sequence[float], ys: Sequence[float],
              model_name: str) -> FitResult:
    """Fit y ≈ scale * model(x) + intercept by ordinary least squares."""
    if model_name not in MODELS:
        raise ParameterError(f"unknown model {model_name}")
    if len(xs) != len(ys) or len(xs) < 3:
        raise ParameterError("need at least 3 paired measurements")
    model = MODELS[model_name]
    fs = [model(float(x)) for x in xs]
    n = len(xs)
    mean_f = sum(fs) / n
    mean_y = sum(ys) / n
    var_f = sum((f - mean_f) ** 2 for f in fs)
    if var_f == 0:
        # Constant model: scale is irrelevant, intercept is the mean.
        scale = 0.0
        intercept = mean_y
    else:
        cov = sum((f - mean_f) * (y - mean_y) for f, y in zip(fs, ys))
        scale = cov / var_f
        intercept = mean_y - scale * mean_f
    ss_res = sum(
        (y - (scale * f + intercept)) ** 2 for f, y in zip(fs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return FitResult(model=model_name, scale=scale, intercept=intercept,
                     r_squared=r_squared)


def best_fit(xs: Sequence[float], ys: Sequence[float],
             candidates: Sequence[str] = ("O(1)", "O(log n)", "O(n)"),
             ) -> FitResult:
    """Return the candidate model with the highest R².

    Negative-slope fits are demoted: a "linear" fit with negative scale is
    not evidence of linear growth.
    """
    results = []
    for name in candidates:
        fit = fit_model(xs, ys, name)
        penalized = fit.r_squared if fit.scale >= 0 or name == "O(1)" else -1.0
        results.append((penalized, fit))
    results.sort(key=lambda pair: pair[0], reverse=True)
    return results[0][1]
