"""Security framework: Definitions 1–4, the Theorem 1 simulator, games."""

from repro.security.games import (Distinguishers, GameResult,
                                  distinguishing_advantage)
from repro.security.leakage import (UpdateObservation,
                                    attribution_entropy_bits,
                                    keyword_count_leak_bits, linkage_matrix,
                                    observe_updates)
from repro.security.scheme2_sim import (Scheme2Trace, Scheme2View,
                                        observe_scheme2_view,
                                        simulate_scheme2_view,
                                        trace_of_scheme2_view)
from repro.security.simulator import ViewShape, simulate_view
from repro.security.trace import (History, Trace, View, real_view,
                                  search_pattern_matrix, trace_of)

__all__ = [
    "Distinguishers",
    "Scheme2Trace",
    "Scheme2View",
    "GameResult",
    "History",
    "Trace",
    "UpdateObservation",
    "View",
    "ViewShape",
    "attribution_entropy_bits",
    "distinguishing_advantage",
    "keyword_count_leak_bits",
    "linkage_matrix",
    "observe_scheme2_view",
    "observe_updates",
    "real_view",
    "search_pattern_matrix",
    "simulate_scheme2_view",
    "simulate_view",
    "trace_of",
    "trace_of_scheme2_view",
]
