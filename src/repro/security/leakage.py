"""Update-leakage accounting (paper §5.7).

The Theorem 1 proof covers storage + adaptive searches; *updates* leak two
extra things the paper identifies:

1. **the number of keywords in each update** (count of triples on the
   wire), and
2. **which keywords are shared across updates** (repeated tags link
   updates that touch the same keyword).

§5.7 proposes two mitigations — batched updates and fake updates — and
claims per-document leakage "goes asymptotically towards zero bits" as the
batch grows.  This module turns those claims into numbers:

* :class:`UpdateObservation` — what a curious server extracts from one
  update message (tag multiset, sizes);
* :func:`attribution_entropy_bits` — how many bits the server is missing
  to attribute a keyword to a specific document within a batch (log2 of
  the candidate-document count): 0 bits for singleton updates, growing
  with batch size;
* :func:`linkage_matrix` — cross-update tag overlap counts, flattened to
  uniform by fake updates that pad every update to the same keyword set
  size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.net.channel import TranscriptEntry
from repro.net.messages import MessageType

__all__ = ["UpdateObservation", "observe_updates",
           "attribution_entropy_bits", "keyword_count_leak_bits",
           "linkage_matrix"]

_UPDATE_TYPES = {MessageType.S1_UPDATE_PATCH, MessageType.S2_STORE_ENTRY,
                 MessageType.S1_STORE_ENTRY}


@dataclass(frozen=True)
class UpdateObservation:
    """Server-observable facts about one metadata update message."""

    message_type: MessageType
    tags: tuple[bytes, ...]
    payload_sizes: tuple[int, ...]

    @property
    def keyword_count(self) -> int:
        """Number of keyword triples — leak #1."""
        return len(self.tags)


def observe_updates(
    transcript: Sequence[TranscriptEntry],
) -> list[UpdateObservation]:
    """Extract every update observation from a channel transcript.

    Both schemes send (tag, payload, extra) triples, so the tag is every
    third field starting at 0 and the payload every third starting at 1.
    """
    observations: list[UpdateObservation] = []
    for entry in transcript:
        if entry.direction != "client->server":
            continue
        if entry.message.type not in _UPDATE_TYPES:
            continue
        fields = entry.message.fields
        tags = tuple(fields[i] for i in range(0, len(fields), 3))
        sizes = tuple(len(fields[i]) for i in range(1, len(fields), 3))
        observations.append(UpdateObservation(
            message_type=entry.message.type, tags=tags, payload_sizes=sizes,
        ))
    return observations


def attribution_entropy_bits(batch_size: int) -> float:
    """Bits of uncertainty about which batched document carries a keyword.

    With *batch_size* documents updated at once, a keyword seen in the
    update could belong to any of them (or any subset); the per-keyword
    attribution uncertainty is log2(batch_size) bits.  This is the §5.7
    "leakage goes asymptotically towards zero" claim phrased positively:
    the server's missing information grows without bound in the batch size.
    """
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    return math.log2(batch_size)


def keyword_count_leak_bits(keyword_counts: Sequence[int]) -> float:
    """Empirical entropy (bits) of the keyword-count side channel.

    If every update carries the same number of keywords (fake-update
    padding), the count distribution is constant and this is 0 — the
    channel is closed.  Varied counts yield positive entropy, i.e. the
    server learns about update composition from sizes alone.
    """
    if not keyword_counts:
        return 0.0
    total = len(keyword_counts)
    frequencies: dict[int, int] = {}
    for count in keyword_counts:
        frequencies[count] = frequencies.get(count, 0) + 1
    entropy = 0.0
    for freq in frequencies.values():
        p = freq / total
        entropy -= p * math.log2(p)
    return entropy


def linkage_matrix(
    observations: Sequence[UpdateObservation],
) -> list[list[int]]:
    """M[i][j] = number of tags updates i and j share — leak #2.

    Fake updates that always touch the same padded keyword set drive every
    off-diagonal entry to the same value, destroying the linkage signal.
    """
    tag_sets = [set(obs.tags) for obs in observations]
    n = len(tag_sets)
    return [
        [len(tag_sets[i] & tag_sets[j]) for j in range(n)]
        for i in range(n)
    ]
