"""Update-leakage accounting (paper §5.7).

The Theorem 1 proof covers storage + adaptive searches; *updates* leak two
extra things the paper identifies:

1. **the number of keywords in each update** (count of triples on the
   wire), and
2. **which keywords are shared across updates** (repeated tags link
   updates that touch the same keyword).

§5.7 proposes two mitigations — batched updates and fake updates — and
claims per-document leakage "goes asymptotically towards zero bits" as the
batch grows.  This module turns those claims into numbers:

* :class:`UpdateObservation` — what a curious server extracts from one
  update message (tag multiset, sizes);
* :func:`attribution_entropy_bits` — how many bits the server is missing
  to attribute a keyword to a specific document within a batch (log2 of
  the candidate-document count): 0 bits for singleton updates, growing
  with batch size;
* :func:`linkage_matrix` — cross-update tag overlap counts, flattened to
  uniform by fake updates that pad every update to the same keyword set
  size;
* :func:`update_recovery_rate` — the forward-privacy measurement: how
  much of the update stream a *value-equality linker* (an observer who
  joins opaque wire values across messages, the strongest generic
  passive attack) can attribute to searched keywords.  Scheme 1/2 update
  tags repeat their search tags verbatim, so recovery is total; Scheme 3
  addresses never repeat any wire value, so recovery is zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.net.channel import TranscriptEntry
from repro.net.messages import MessageType

__all__ = ["UpdateObservation", "observe_updates",
           "attribution_entropy_bits", "keyword_count_leak_bits",
           "linkage_matrix", "update_recovery_rate"]

# Metadata-update messages and their wire layout: every *stride* fields
# hold one (tag, payload, ...) group with the keyword-linkable value at
# offset 0 and the encrypted payload at offset 1.  Scheme 1/2 ship
# triples; Scheme 3 ships (address, payload) pairs.
_UPDATE_STRIDES = {
    MessageType.S1_STORE_ENTRY: 3,
    MessageType.S1_UPDATE_PATCH: 3,
    MessageType.S2_STORE_ENTRY: 3,
    MessageType.S3_STORE_ENTRY: 2,
}
_UPDATE_TYPES = set(_UPDATE_STRIDES)

# Search requests, for the cross-message linker in
# :func:`update_recovery_rate`.
_SEARCH_TYPES = {MessageType.S1_SEARCH_REQUEST,
                 MessageType.S2_SEARCH_REQUEST,
                 MessageType.S3_SEARCH_REQUEST}


@dataclass(frozen=True)
class UpdateObservation:
    """Server-observable facts about one metadata update message."""

    message_type: MessageType
    tags: tuple[bytes, ...]
    payload_sizes: tuple[int, ...]

    @property
    def keyword_count(self) -> int:
        """Number of keyword triples — leak #1."""
        return len(self.tags)


def observe_updates(
    transcript: Sequence[TranscriptEntry],
) -> list[UpdateObservation]:
    """Extract every update observation from a channel transcript.

    Each update type lays out (tag, payload, ...) groups at a fixed
    stride (see ``_UPDATE_STRIDES``): the keyword-linkable value is every
    stride-th field starting at 0, the payload every stride-th starting
    at 1.
    """
    observations: list[UpdateObservation] = []
    for entry in transcript:
        if entry.direction != "client->server":
            continue
        stride = _UPDATE_STRIDES.get(entry.message.type)
        if stride is None:
            continue
        fields = entry.message.fields
        tags = tuple(fields[i] for i in range(0, len(fields), stride))
        sizes = tuple(len(fields[i]) for i in range(1, len(fields), stride))
        observations.append(UpdateObservation(
            message_type=entry.message.type, tags=tags, payload_sizes=sizes,
        ))
    return observations


def attribution_entropy_bits(batch_size: int) -> float:
    """Bits of uncertainty about which batched document carries a keyword.

    With *batch_size* documents updated at once, a keyword seen in the
    update could belong to any of them (or any subset); the per-keyword
    attribution uncertainty is log2(batch_size) bits.  This is the §5.7
    "leakage goes asymptotically towards zero" claim phrased positively:
    the server's missing information grows without bound in the batch size.
    """
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    return math.log2(batch_size)


def keyword_count_leak_bits(keyword_counts: Sequence[int]) -> float:
    """Empirical entropy (bits) of the keyword-count side channel.

    If every update carries the same number of keywords (fake-update
    padding), the count distribution is constant and this is 0 — the
    channel is closed.  Varied counts yield positive entropy, i.e. the
    server learns about update composition from sizes alone.
    """
    if not keyword_counts:
        return 0.0
    total = len(keyword_counts)
    frequencies: dict[int, int] = {}
    for count in keyword_counts:
        frequencies[count] = frequencies.get(count, 0) + 1
    entropy = 0.0
    for freq in frequencies.values():
        p = freq / total
        entropy -= p * math.log2(p)
    return entropy


def linkage_matrix(
    observations: Sequence[UpdateObservation],
) -> list[list[int]]:
    """M[i][j] = number of tags updates i and j share — leak #2.

    Fake updates that always touch the same padded keyword set drive every
    off-diagonal entry to the same value, destroying the linkage signal.
    """
    tag_sets = [set(obs.tags) for obs in observations]
    n = len(tag_sets)
    return [
        [len(tag_sets[i] & tag_sets[j]) for j in range(n)]
        for i in range(n)
    ]


def update_recovery_rate(transcript: Sequence[TranscriptEntry]) -> float:
    """Fraction of update entries a value-equality linker attributes.

    Model: the honest-but-curious observer knows which keyword each
    search request stands for (chosen-query / frequency knowledge — the
    standard search-pattern assumption) and tries to attribute update
    entries to keywords by joining opaque wire values across messages: an
    update entry whose leading value reappears in any search request is
    recovered.  No scheme-specific computation is applied — this is the
    strongest *generic* passive linker.

    Scheme 1/2 update tags are exactly the searched trapdoor tags, so a
    workload that searches its keywords yields recovery ≈ 1.  Scheme 3
    entries live at fresh one-time addresses sharing no bytes with any
    token, so recovery is 0 — the forward-privacy property, measured.
    """
    searched: set[bytes] = set()
    for entry in transcript:
        if entry.direction != "client->server":
            continue
        if entry.message.type in _SEARCH_TYPES:
            searched.update(entry.message.fields)
    observations = observe_updates(transcript)
    total = sum(obs.keyword_count for obs in observations)
    if total == 0:
        return 0.0
    matched = sum(1 for obs in observations
                  for tag in obs.tags if tag in searched)
    return matched / total
