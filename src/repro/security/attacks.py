"""Leakage-abuse attacks against the trace the schemes are ALLOWED to leak.

Theorem 1 says the server learns nothing beyond the trace — but the trace
itself (result sets D(w), search pattern Π_q) is exploitable by an
adversary with auxiliary knowledge.  These classic attacks make that
concrete, quantifying the residual risk the paper's security definition
deliberately accepts:

* :class:`FrequencyAttack` — the adversary knows the corpus's keyword
  frequency distribution (e.g. public disease statistics for a PHR) and
  matches each query's observed result *count* against expected keyword
  frequencies.
* :class:`KnownDocumentAttack` — the adversary knows the keyword sets of
  some stored documents (it contributed them, or they are public) and
  identifies queries by exactly which known documents they return.

Both consume :class:`QueryObservation` records — precisely what an
honest-but-curious server sees per search — and return ranked keyword
guesses, so tests and examples can score recovery rates and evaluate
countermeasures (result padding collapses the frequency signal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ParameterError

__all__ = ["QueryObservation", "FrequencyAttack", "KnownDocumentAttack",
           "recovery_rate"]


@dataclass(frozen=True)
class QueryObservation:
    """What the server sees for one search: which ids it returned."""

    returned_ids: tuple[int, ...]

    @property
    def result_count(self) -> int:
        return len(self.returned_ids)


class FrequencyAttack:
    """Match observed result counts against known keyword frequencies.

    ``auxiliary`` maps keyword -> expected number of matching documents.
    For each observation the attack ranks keywords by |expected - seen|;
    ties rank alphabetically (deterministic output for tests).
    """

    def __init__(self, auxiliary: Mapping[str, int]) -> None:
        if not auxiliary:
            raise ParameterError("frequency attack needs auxiliary counts")
        self._auxiliary = dict(auxiliary)

    def rank_keywords(self, observation: QueryObservation,
                      top: int = 3) -> list[str]:
        """Ranked guesses for the queried keyword (best first)."""
        scored = sorted(
            self._auxiliary.items(),
            key=lambda item: (abs(item[1] - observation.result_count),
                              item[0]),
        )
        return [keyword for keyword, _ in scored[:top]]

    def guess(self, observation: QueryObservation) -> str:
        """The single best guess."""
        return self.rank_keywords(observation, top=1)[0]


class KnownDocumentAttack:
    """Identify queries by their footprint on known documents.

    ``known_documents`` maps doc_id -> keyword set.  A query returning
    known ids {3, 7} but not {5} must be a keyword contained in docs 3 and
    7 and absent from 5; candidates are exactly the keywords consistent
    with the observed partition of the known documents.
    """

    def __init__(self, known_documents: Mapping[int, frozenset[str]]) -> None:
        if not known_documents:
            raise ParameterError("known-document attack needs documents")
        self._known = {
            doc_id: frozenset(keywords)
            for doc_id, keywords in known_documents.items()
        }
        self._vocabulary: set[str] = set()
        for keywords in self._known.values():
            self._vocabulary |= keywords

    def candidates(self, observation: QueryObservation) -> list[str]:
        """All keywords consistent with the observation, sorted."""
        returned = set(observation.returned_ids)
        survivors = []
        for keyword in sorted(self._vocabulary):
            consistent = all(
                (doc_id in returned) == (keyword in keywords)
                for doc_id, keywords in self._known.items()
            )
            if consistent:
                survivors.append(keyword)
        return survivors

    def guess(self, observation: QueryObservation) -> str | None:
        """The unique consistent keyword, if the observation pins one down."""
        candidates = self.candidates(observation)
        return candidates[0] if len(candidates) == 1 else None


def recovery_rate(guesses: Sequence[str | None],
                  truths: Sequence[str]) -> float:
    """Fraction of queries whose keyword the attack recovered exactly."""
    if len(guesses) != len(truths):
        raise ParameterError("guesses and truths must align")
    if not truths:
        return 0.0
    hits = sum(1 for g, t in zip(guesses, truths) if g == t)
    return hits / len(truths)
