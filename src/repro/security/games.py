"""Empirical real-vs-simulated indistinguishability experiments.

Theorem 1 is an asymptotic statement; these games give it teeth in a test
suite.  A *distinguisher* is any function ``View -> float`` producing a
statistic; the game runs it over many independent real and simulated views
and reports the separation between the two samples.

A sound scheme + simulator should leave every "legal" distinguisher (one
computable from public data) with advantage ≈ 0; a deliberately broken
simulator (wrong widths, reused masks) is caught with advantage ≈ 1.  The
test suite exercises both directions, which validates the harness itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.security.trace import View

__all__ = ["GameResult", "distinguishing_advantage", "Distinguishers"]

Distinguisher = Callable[[View], float]


@dataclass(frozen=True)
class GameResult:
    """Outcome of one distinguishing experiment."""

    real_scores: tuple[float, ...]
    simulated_scores: tuple[float, ...]

    @property
    def advantage(self) -> float:
        """Best threshold-distinguisher advantage in [0, 1].

        Computed as the maximum over thresholds θ of
        |Pr[real > θ] − Pr[sim > θ]| — the empirical total-variation
        distance of the two score samples.
        """
        scores = sorted(set(self.real_scores) | set(self.simulated_scores))
        best = 0.0
        n_real = len(self.real_scores)
        n_sim = len(self.simulated_scores)
        for theta in scores:
            p_real = sum(1 for s in self.real_scores if s > theta) / n_real
            p_sim = sum(1 for s in self.simulated_scores if s > theta) / n_sim
            best = max(best, abs(p_real - p_sim))
        return best

    @property
    def mean_gap(self) -> float:
        """Difference of sample means (signed, unnormalized)."""
        mean_real = sum(self.real_scores) / len(self.real_scores)
        mean_sim = sum(self.simulated_scores) / len(self.simulated_scores)
        return mean_real - mean_sim


def distinguishing_advantage(
    real_views: Sequence[View],
    simulated_views: Sequence[View],
    distinguisher: Distinguisher,
) -> GameResult:
    """Score every view with *distinguisher* and package the two samples."""
    return GameResult(
        real_scores=tuple(distinguisher(v) for v in real_views),
        simulated_scores=tuple(distinguisher(v) for v in simulated_views),
    )


def _byte_entropy(data: bytes) -> float:
    """Shannon entropy (bits/byte) of a byte string; 8.0 ≈ uniform."""
    if not data:
        return 0.0
    counts = [0] * 256
    for b in data:
        counts[b] += 1
    total = len(data)
    entropy = 0.0
    for c in counts:
        if c:
            p = c / total
            entropy -= p * math.log2(p)
    return entropy


class Distinguishers:
    """A library of distinguishers the game tests draw from."""

    @staticmethod
    def ciphertext_entropy(view: View) -> float:
        """Mean byte entropy of the document ciphertexts."""
        if not view.ciphertexts:
            return 0.0
        return sum(_byte_entropy(ct) for ct in view.ciphertexts) / len(
            view.ciphertexts
        )

    @staticmethod
    def masked_index_entropy(view: View) -> float:
        """Mean byte entropy of the masked indexes (the B components)."""
        if not view.index_entries:
            return 0.0
        return sum(
            _byte_entropy(b) for _, b, _ in view.index_entries
        ) / len(view.index_entries)

    @staticmethod
    def masked_index_popcount(view: View) -> float:
        """Mean fraction of set bits in the B components.

        A broken mask (e.g. G(r) reused or all-zero) drags this toward the
        sparse plaintext density; a sound one sits at 0.5.
        """
        total_bits = 0
        set_bits = 0
        for _, b, _ in view.index_entries:
            total_bits += 8 * len(b)
            set_bits += sum(bin(byte).count("1") for byte in b)
        return set_bits / total_bits if total_bits else 0.0

    @staticmethod
    def total_view_bytes(view: View) -> float:
        """Total byte volume — catches simulators with wrong shapes."""
        return float(
            sum(len(ct) for ct in view.ciphertexts)
            + sum(len(a) + len(b) + len(c)
                  for a, b, c in view.index_entries)
            + sum(len(t) for t in view.trapdoors)
        )

    @staticmethod
    def trapdoor_repeat_fraction(view: View) -> float:
        """Fraction of trapdoors that repeat an earlier one.

        Must match between real and simulated views because Π_q is in the
        trace — the search pattern is *allowed* leakage, and the simulator
        reproduces it exactly.
        """
        if not view.trapdoors:
            return 0.0
        seen: set[bytes] = set()
        repeats = 0
        for t in view.trapdoors:
            if t in seen:
                repeats += 1
            seen.add(t)
        return repeats / len(view.trapdoors)

    @staticmethod
    def trapdoors_in_index_fraction(view: View) -> float:
        """Fraction of trapdoors appearing as an index A component.

        1.0 in both real and simulated views (queries target stored
        keywords; the simulator assigns trapdoors from its own table).
        """
        if not view.trapdoors:
            return 1.0
        tags = {a for a, _, _ in view.index_entries}
        return sum(1 for t in view.trapdoors if t in tags) / len(view.trapdoors)
