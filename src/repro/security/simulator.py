"""The simulator S from the proof of Theorem 1 (paper §5.3).

Given only the trace — never the history — the simulator emits a view that
is computationally indistinguishable from the real one:

1. random ``R_i`` with ``|R_i| = |M_i|`` in place of each ciphertext
   (valid because E_km is IND-CPA: AES-CTR + MAC);
2. a simulated index of ``|W_D|`` random triples (A_i, B_i, C_i) with the
   same component widths as real (f_kw(w), I(w)⊕G(r), F(r)) entries;
3. trapdoors assigned consistently with the search pattern Π_q: a repeated
   query reuses its earlier trapdoor, a fresh query consumes an unused A_j.

The widths are parameters (:class:`ViewShape`) because indistinguishability
only holds when the simulator knows the public scheme parameters —
capacity, group size, ciphertext overhead — which a real server knows too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.authenc import OVERHEAD
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import ParameterError
from repro.security.trace import Trace, View

__all__ = ["ViewShape", "simulate_view"]


@dataclass(frozen=True)
class ViewShape:
    """Public scheme parameters the simulator (like any server) knows."""

    tag_size: int = 16
    capacity: int = 1024
    elgamal_modulus_bytes: int = 64
    ciphertext_overhead: int = OVERHEAD

    @property
    def masked_index_size(self) -> int:
        """Width of I(w) ⊕ G(r) in bytes."""
        return (self.capacity + 7) // 8

    @property
    def fr_size(self) -> int:
        """Width of a serialized F(r) ElGamal ciphertext."""
        return 2 * self.elgamal_modulus_bytes


def simulate_view(trace: Trace, shape: ViewShape,
                  rng: RandomSource | None = None) -> View:
    """Run the Theorem 1 simulator on *trace* and return the simulated view."""
    rng = rng if rng is not None else SystemRandomSource()

    # Step 1: R_1..R_n with |R_i| = |M_i| (+ the public AEAD overhead).
    ciphertexts = tuple(
        rng.random_bytes(length + shape.ciphertext_overhead)
        for length in trace.doc_lengths
    )

    # Step 2: |W_D| random (A_i, B_i, C_i) triples.
    if trace.total_keywords < 0:
        raise ParameterError("total keyword count cannot be negative")
    entries = tuple(
        (
            rng.random_bytes(shape.tag_size),
            rng.random_bytes(shape.masked_index_size),
            rng.random_bytes(shape.fr_size),
        )
        for _ in range(trace.total_keywords)
    )

    # Step 3: trapdoors consistent with Π_q.
    pattern = trace.search_pattern
    trapdoors: list[bytes] = []
    used_entries: list[int] = []
    next_free = 0
    for t in range(trace.num_queries):
        repeat_of = None
        for j in range(t):
            if pattern[j][t] == 1:
                repeat_of = j
                break
        if repeat_of is not None:
            trapdoors.append(trapdoors[repeat_of])
            used_entries.append(used_entries[repeat_of])
        else:
            if next_free >= len(entries):
                raise ParameterError(
                    "trace has more distinct queries than keywords"
                )
            trapdoors.append(entries[next_free][0])
            used_entries.append(next_free)
            next_free += 1

    return View(
        doc_ids=tuple(trace.doc_ids),
        ciphertexts=ciphertexts,
        index_entries=entries,
        trapdoors=tuple(trapdoors),
    )
