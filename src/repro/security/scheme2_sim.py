"""A simulator for Scheme 2 views (the proof the paper waves at in §5.7).

The paper proves Theorem 1 for Scheme 1 and remarks that Scheme 2's
security "is similar to that of scheme 1" without spelling it out.  This
module spells it out executably: a view structure for Scheme 2 servers, an
update-aware trace, and a simulator producing indistinguishable views from
that trace alone.

What a Scheme 2 server holds/sees after `j` update batches and `q`
searches:

* per keyword-tag: an append-only list of (encrypted segment, verifier)
  pairs — sizes public, contents PRP-encrypted / PRF outputs;
* per search: a trapdoor (tag, chain element) plus, transitively, every
  chain element on the walk and the decrypted id-lists (access pattern).

The corresponding trace (allowed leakage, extending Definition 3 with the
§5.7 update leaks the paper concedes):

* document ids and lengths;
* per update batch: the multiset of (tag-identity, segment byte-size)
  pairs — *which* keyword-identities were touched and how big each
  segment was, but not the keywords or contents;
* per search: the result set and the search pattern.

The simulator samples random tags per keyword identity, random bytes of
the right width per segment (valid because ℰ is a PRP under a never-
revealed-before-search key and f' is a PRF), and random chain elements for
trapdoors consistent with the search pattern.  The games in the tests run
the same distinguisher battery used for Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import ParameterError

__all__ = ["Scheme2View", "Scheme2Trace", "UpdateShape",
           "observe_scheme2_view", "trace_of_scheme2_view",
           "simulate_scheme2_view"]

_TAG_SIZE = 16
_VERIFIER_SIZE = 16
_ELEMENT_SIZE = 32


@dataclass(frozen=True)
class UpdateShape:
    """One update batch as the trace records it: (keyword-id, bytes)*."""

    touched: tuple[tuple[int, int], ...]  # (keyword identity, segment size)


@dataclass(frozen=True)
class Scheme2View:
    """Everything a Scheme 2 server holds, flattened for comparison."""

    doc_ids: tuple[int, ...]
    ciphertexts: tuple[bytes, ...]
    # Per tag: the tag bytes and its ordered segment list.
    index: tuple[tuple[bytes, tuple[tuple[bytes, bytes], ...]], ...]
    trapdoors: tuple[tuple[bytes, bytes], ...]  # (tag, chain element)


@dataclass(frozen=True)
class Scheme2Trace:
    """The allowed leakage for a Scheme 2 interaction."""

    doc_ids: tuple[int, ...]
    doc_lengths: tuple[int, ...]
    updates: tuple[UpdateShape, ...]
    query_keyword_ids: tuple[int, ...]   # search pattern via identity
    query_results: tuple[tuple[int, ...], ...]


def observe_scheme2_view(server, queries: Sequence[tuple[bytes, bytes]]
                         ) -> Scheme2View:
    """Collect a live Scheme2Server's state plus the issued trapdoors."""
    doc_ids = tuple(sorted(server.documents.ids()))
    ciphertexts = tuple(server.documents.get(i) for i in doc_ids)
    index = tuple(
        (tag, tuple(entry.segments))
        for tag, entry in server.index.items()
    )
    return Scheme2View(doc_ids=doc_ids, ciphertexts=ciphertexts,
                       index=index, trapdoors=tuple(queries))


def trace_of_scheme2_view(view: Scheme2View,
                          ciphertext_overhead: int) -> Scheme2Trace:
    """Derive the trace a curious server could write down from a view.

    Keyword identities are positional (the order tags appear in the
    index); this is exactly the information content of "same tag seen
    again" without the tag bytes themselves.
    """
    tag_ids = {tag: i for i, (tag, _) in enumerate(view.index)}
    # Reconstruct per-batch shapes is not possible from the flattened
    # view alone (append order within one batch is), so the trace records
    # the per-tag segment size lists — equivalent information for a
    # single-threaded client.
    updates = tuple(
        UpdateShape(touched=tuple(
            (tag_ids[tag], len(blob)) for blob, _ in segments
        ))
        for tag, segments in view.index
    )
    return Scheme2Trace(
        doc_ids=view.doc_ids,
        doc_lengths=tuple(
            len(ct) - ciphertext_overhead for ct in view.ciphertexts
        ),
        updates=updates,
        query_keyword_ids=tuple(
            tag_ids.get(tag, -1) for tag, _ in view.trapdoors
        ),
        query_results=(),  # result sets live in transcripts, not the index
    )


def simulate_scheme2_view(trace: Scheme2Trace,
                          ciphertext_overhead: int,
                          rng: RandomSource | None = None) -> Scheme2View:
    """Produce a view indistinguishable from a real one, from the trace.

    * ciphertexts: random bytes of |M_i| + overhead (IND-CPA document
      encryption);
    * per keyword identity: a random 16-byte tag (PRF), and per recorded
      segment a random blob of the recorded width (PRP under a fresh key)
      with a random 16-byte verifier (PRF of an unknown key);
    * trapdoors: the identified tag plus a random 32-byte chain element,
      repeated identically for repeated keyword identities (the search
      pattern is public; the element is determined by the keyword and the
      counter, both fixed across repeats with no intervening update).
    """
    rng = rng if rng is not None else SystemRandomSource()
    ciphertexts = tuple(
        rng.random_bytes(length + ciphertext_overhead)
        for length in trace.doc_lengths
    )
    index: list[tuple[bytes, tuple[tuple[bytes, bytes], ...]]] = []
    for shape in trace.updates:
        tag = rng.random_bytes(_TAG_SIZE)
        segments = tuple(
            (rng.random_bytes(size), rng.random_bytes(_VERIFIER_SIZE))
            for _, size in shape.touched
        )
        index.append((tag, segments))

    trapdoors: list[tuple[bytes, bytes]] = []
    element_for: dict[int, bytes] = {}
    for keyword_id in trace.query_keyword_ids:
        if keyword_id < 0 or keyword_id >= len(index):
            raise ParameterError("trace references an unknown keyword id")
        if keyword_id not in element_for:
            element_for[keyword_id] = rng.random_bytes(_ELEMENT_SIZE)
        trapdoors.append((index[keyword_id][0], element_for[keyword_id]))

    return Scheme2View(
        doc_ids=tuple(trace.doc_ids),
        ciphertexts=ciphertexts,
        index=tuple(index),
        trapdoors=tuple(trapdoors),
    )
