"""History, View, and Trace (paper Definitions 1–3).

These three objects structure the simulation-based security argument:

* :class:`History` — the client's secret input: the document collection
  plus the keywords queried, in order.
* :class:`View` — everything the server sees: document ids, ciphertexts,
  the searchable representations S, and the trapdoors.
* :class:`Trace` — what the scheme is *allowed* to leak: ids, document
  lengths, the total keyword count |W_D|, each query's result set D(w),
  and the search pattern Π_q (which queries repeat).

``trace_of`` derives the trace from a history exactly as Definition 3
prescribes; ``real_view`` assembles a Scheme 1 view from live client/server
objects so the games in :mod:`repro.security.games` can compare it against
simulator output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.documents import Document, normalize_keyword
from repro.core.scheme1 import Scheme1Client, Scheme1Server
from repro.errors import ParameterError

__all__ = ["History", "Trace", "View", "trace_of", "real_view",
           "search_pattern_matrix"]


@dataclass(frozen=True)
class History:
    """H_q = (D, w_1, ..., w_q): documents plus q search keywords."""

    documents: tuple[Document, ...]
    queries: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "queries",
            tuple(normalize_keyword(w) for w in self.queries),
        )
        ids = [doc.doc_id for doc in self.documents]
        if len(set(ids)) != len(ids):
            raise ParameterError("document ids in a history must be unique")

    def partial(self, t: int) -> "History":
        """H_q^t: the same documents with only the first t queries."""
        if not 0 <= t <= len(self.queries):
            raise ParameterError("partial history index out of range")
        return History(self.documents, self.queries[:t])


def search_pattern_matrix(queries: Sequence[str]) -> list[list[int]]:
    """Π_q: symmetric binary matrix with Π[i][j] = 1 iff w_i == w_j."""
    q = len(queries)
    return [
        [1 if queries[i] == queries[j] else 0 for j in range(q)]
        for i in range(q)
    ]


@dataclass(frozen=True)
class Trace:
    """Tr(H_q): the information Definition 3 allows the server to learn."""

    doc_ids: tuple[int, ...]
    doc_lengths: tuple[int, ...]
    total_keywords: int                      # |W_D|
    query_results: tuple[tuple[int, ...], ...]  # D(w_t) per query
    search_pattern: tuple[tuple[int, ...], ...]  # Π_q

    @property
    def num_queries(self) -> int:
        """q: how many search queries the trace covers."""
        return len(self.query_results)

    def partial(self, t: int) -> "Trace":
        """The trace of the partial history H_q^t."""
        if not 0 <= t <= self.num_queries:
            raise ParameterError("partial trace index out of range")
        return Trace(
            doc_ids=self.doc_ids,
            doc_lengths=self.doc_lengths,
            total_keywords=self.total_keywords,
            query_results=self.query_results[:t],
            search_pattern=tuple(
                tuple(row[:t]) for row in self.search_pattern[:t]
            ),
        )


def trace_of(history: History) -> Trace:
    """Derive Tr(H_q) from a history exactly as Definition 3 prescribes."""
    doc_ids = tuple(doc.doc_id for doc in history.documents)
    doc_lengths = tuple(doc.size for doc in history.documents)
    all_keywords: set[str] = set()
    for doc in history.documents:
        all_keywords |= doc.keywords
    results = tuple(
        tuple(sorted(
            doc.doc_id for doc in history.documents if w in doc.keywords
        ))
        for w in history.queries
    )
    pattern = tuple(
        tuple(row) for row in search_pattern_matrix(history.queries)
    )
    return Trace(
        doc_ids=doc_ids,
        doc_lengths=doc_lengths,
        total_keywords=len(all_keywords),
        query_results=results,
        search_pattern=pattern,
    )


@dataclass(frozen=True)
class View:
    """V_K(H_q): ids, ciphertexts, index entries, trapdoors (Definition 2).

    ``index_entries`` are (A, B, C) triples — for the real Scheme 1 view
    these are (f_kw(w), I(w)⊕G(r), F(r)); the simulator produces random
    triples of the same widths.
    """

    doc_ids: tuple[int, ...]
    ciphertexts: tuple[bytes, ...]
    index_entries: tuple[tuple[bytes, bytes, bytes], ...]
    trapdoors: tuple[bytes, ...] = field(default_factory=tuple)

    def partial(self, t: int) -> "View":
        """V_K^t: the view truncated to the first t trapdoors."""
        if not 0 <= t <= len(self.trapdoors):
            raise ParameterError("partial view index out of range")
        return View(self.doc_ids, self.ciphertexts, self.index_entries,
                    self.trapdoors[:t])


def real_view(history: History, client: Scheme1Client,
              server: Scheme1Server) -> View:
    """Execute H_q against a live Scheme 1 deployment and collect the view.

    The caller provides a *fresh* client/server pair; this function stores
    the documents, runs the queries, and reads the server's state — i.e. it
    plays the honest-but-curious server's perspective.
    """
    client.store(list(history.documents))
    trapdoors = []
    for keyword in history.queries:
        client.search(keyword)
        trapdoors.append(client._key.tag_for(keyword))
    doc_ids = tuple(sorted(server.documents.ids()))
    ciphertexts = tuple(server.documents.get(i) for i in doc_ids)
    entries = tuple(
        (tag, masked, fr) for tag, (masked, fr) in server.index.items()
    )
    return View(
        doc_ids=doc_ids,
        ciphertexts=ciphertexts,
        index_entries=entries,
        trapdoors=tuple(trapdoors),
    )
