"""Adaptive query experiments (Definition 4's adversary model).

Definition 4 quantifies over adversaries that choose each query *after*
seeing the view of everything so far — strictly stronger than fixing all
queries up front.  The non-adaptive games in :mod:`repro.security.games`
compare complete views; this module runs the query-by-query version:

1. an :class:`AdaptiveAdversary` strategy receives the partial view
   ``V^t`` and picks the next keyword;
2. the experiment runs the strategy against a *real* deployment, recording
   the partial views it actually saw;
3. the simulator then reproduces the same interaction from the growing
   trace alone;
4. step-wise view shapes and search-pattern structure must match exactly,
   and any distinguisher can be evaluated on matched partial views.

Because practical strategies are deterministic functions of the view, a
strategy that behaves differently against real and simulated partial views
IS a distinguisher — :func:`adaptive_experiment` reports whether the query
sequences diverged, which the tests assert never happens for view-shape-
driven strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.scheme1 import Scheme1Client, Scheme1Server
from repro.errors import ParameterError
from repro.security.simulator import ViewShape, simulate_view
from repro.security.trace import History, Trace, View, trace_of

__all__ = ["AdaptiveAdversary", "AdaptiveRun", "run_real_adaptive",
           "run_simulated_adaptive", "adaptive_experiment"]

# A strategy maps (partial view, step index, keyword menu) -> chosen index.
AdaptiveAdversary = Callable[[View, int, int], int]


@dataclass(frozen=True)
class AdaptiveRun:
    """Everything one adaptive interaction produced."""

    chosen_indices: tuple[int, ...]
    partial_views: tuple[View, ...]

    @property
    def final_view(self) -> View:
        return self.partial_views[-1]


def _collect_view(client: Scheme1Client, server: Scheme1Server,
                  trapdoors: Sequence[bytes]) -> View:
    doc_ids = tuple(sorted(server.documents.ids()))
    ciphertexts = tuple(server.documents.get(i) for i in doc_ids)
    entries = tuple(
        (tag, masked, fr) for tag, (masked, fr) in server.index.items()
    )
    return View(doc_ids=doc_ids, ciphertexts=ciphertexts,
                index_entries=entries, trapdoors=tuple(trapdoors))


def run_real_adaptive(documents, keyword_menu: Sequence[str],
                      adversary: AdaptiveAdversary, steps: int,
                      client: Scheme1Client,
                      server: Scheme1Server) -> AdaptiveRun:
    """Drive a real deployment with adaptively chosen queries."""
    if steps < 1:
        raise ParameterError("adaptive runs need at least one step")
    client.store(list(documents))
    trapdoors: list[bytes] = []
    chosen: list[int] = []
    views: list[View] = []
    view = _collect_view(client, server, trapdoors)
    for t in range(steps):
        index = adversary(view, t, len(keyword_menu)) % len(keyword_menu)
        chosen.append(index)
        keyword = keyword_menu[index]
        client.search(keyword)
        trapdoors.append(client._key.tag_for(keyword))
        view = _collect_view(client, server, trapdoors)
        views.append(view)
    return AdaptiveRun(chosen_indices=tuple(chosen),
                       partial_views=tuple(views))


def run_simulated_adaptive(documents, keyword_menu: Sequence[str],
                           adversary: AdaptiveAdversary, steps: int,
                           shape: ViewShape, rng) -> AdaptiveRun:
    """Replay the adaptive interaction against the simulator.

    At each step the simulator only ever receives the trace of the history
    *so far* (with the adversary's choices fixed by what it saw), exactly
    as in the definition: storage first, then adaptively growing queries.
    """
    if steps < 1:
        raise ParameterError("adaptive runs need at least one step")
    chosen: list[int] = []
    queries: list[str] = []
    views: list[View] = []

    def current_trace() -> Trace:
        return trace_of(History(tuple(documents), tuple(queries)))

    # The t=0 view has no trapdoors yet; simulate from the empty-query
    # trace.  Reusing one rng keeps per-run table identities stable across
    # steps, mirroring a real server whose index does not change.
    base_view = simulate_view(current_trace(), shape, rng)
    view = base_view
    for t in range(steps):
        index = adversary(view, t, len(keyword_menu)) % len(keyword_menu)
        chosen.append(index)
        queries.append(keyword_menu[index])
        # Extend the simulated view consistently: same table, trapdoors
        # assigned per the updated search pattern.
        pattern = trace_of(
            History(tuple(documents), tuple(queries))
        ).search_pattern
        trapdoors: list[bytes] = []
        used: dict[int, bytes] = {}
        next_free = 0
        for i in range(len(queries)):
            repeat_of = next(
                (j for j in range(i) if pattern[j][i] == 1), None
            )
            if repeat_of is not None:
                trapdoors.append(trapdoors[repeat_of])
            else:
                trapdoors.append(base_view.index_entries[next_free][0])
                used[next_free] = trapdoors[-1]
                next_free += 1
        view = View(
            doc_ids=base_view.doc_ids,
            ciphertexts=base_view.ciphertexts,
            index_entries=base_view.index_entries,
            trapdoors=tuple(trapdoors),
        )
        views.append(view)
    return AdaptiveRun(chosen_indices=tuple(chosen),
                       partial_views=tuple(views))


def adaptive_experiment(documents, keyword_menu: Sequence[str],
                        adversary: AdaptiveAdversary, steps: int,
                        client: Scheme1Client, server: Scheme1Server,
                        shape: ViewShape, rng) -> dict:
    """Run the adversary in both worlds and compare its behaviour.

    Returns per-step comparisons: whether the adversary chose the same
    queries (divergence = it distinguished something), and whether the
    view shapes matched.
    """
    real = run_real_adaptive(documents, keyword_menu, adversary, steps,
                             client, server)
    simulated = run_simulated_adaptive(documents, keyword_menu, adversary,
                                       steps, shape, rng)
    shape_matches = []
    for rv, sv in zip(real.partial_views, simulated.partial_views):
        shape_matches.append(
            [len(c) for c in rv.ciphertexts] == [len(c) for c in sv.ciphertexts]
            and len(rv.index_entries) == len(sv.index_entries)
            and len(rv.trapdoors) == len(sv.trapdoors)
        )
    return {
        "real": real,
        "simulated": simulated,
        "choices_diverged": real.chosen_indices != simulated.chosen_indices,
        "per_step_shape_match": shape_matches,
    }
