"""Server-side encrypted document store — the DataStorage half of Storage.

The paper stores each document as a tuple ``(E_km(M_i), i)``.  The server
never sees plaintext; this store keeps exactly those opaque tuples, keyed
by document identifier, over any :class:`~repro.storage.kvstore.KvStore`.

Keys live in the ``doc:`` namespace of the unified state keyspace (see
:mod:`repro.core.state`), so document bodies and index entries can share
one durable log.  When a :class:`~repro.core.state.StateJournal` is
attached, every put/delete is mirrored into it — which is how *every*
scheme's document mutations become durable without scheme-side code.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ParameterError, StorageError
from repro.storage.kvstore import KvStore, MemoryKvStore

__all__ = ["EncryptedDocumentStore", "DOC_KEY_PREFIX"]

DOC_KEY_PREFIX = b"doc:"


def _doc_key(doc_id: int) -> bytes:
    if doc_id < 0:
        raise ParameterError("document ids must be non-negative")
    return DOC_KEY_PREFIX + doc_id.to_bytes(8, "big")


class EncryptedDocumentStore:
    """Maps document ids to encrypted document bodies.

    >>> store = EncryptedDocumentStore()
    >>> store.put(3, b"<ciphertext>")
    >>> store.get(3)
    b'<ciphertext>'
    """

    def __init__(self, backend: KvStore | None = None,
                 journal=None) -> None:
        self._backend = backend if backend is not None else MemoryKvStore()
        self.journal = journal

    def put(self, doc_id: int, ciphertext: bytes) -> None:
        """Store the encrypted body for *doc_id* (overwrites on update)."""
        key = _doc_key(doc_id)
        self._backend.put(key, ciphertext)
        if self.journal is not None:
            self.journal.put(key, ciphertext)

    def get(self, doc_id: int) -> bytes:
        """Return the encrypted body; raises if the id is unknown."""
        value = self._backend.get(_doc_key(doc_id))
        if value is None:
            raise StorageError(f"no document with id {doc_id}")
        return value

    def get_many(self, doc_ids: list[int]) -> list[tuple[int, bytes]]:
        """Fetch several documents, preserving the requested order."""
        return [(doc_id, self.get(doc_id)) for doc_id in doc_ids]

    def contains(self, doc_id: int) -> bool:
        """True iff a document with *doc_id* is stored."""
        return _doc_key(doc_id) in self._backend

    def delete(self, doc_id: int) -> bool:
        """Remove a document; True if it existed."""
        key = _doc_key(doc_id)
        existed = self._backend.delete(key)
        if existed and self.journal is not None:
            self.journal.delete(key)
        return existed

    def __len__(self) -> int:
        return sum(1 for _ in self.ids())

    def ids(self) -> Iterator[int]:
        """Iterate over stored document ids."""
        for key in self._backend.keys():
            if key.startswith(DOC_KEY_PREFIX):
                yield int.from_bytes(key[4:], "big")

    def total_bytes(self) -> int:
        """Total ciphertext bytes held (for storage-cost accounting)."""
        return sum(
            len(self._backend.get(key) or b"")
            for key in self._backend.keys()
            if key.startswith(DOC_KEY_PREFIX)
        )

    # -- snapshot protocol plumbing ---------------------------------------

    def records(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield every stored body as a raw ``doc:``-namespaced record."""
        for key in self._backend.keys():
            if key.startswith(DOC_KEY_PREFIX):
                value = self._backend.get(key)
                if value is not None:
                    yield key, value

    def load_record(self, key: bytes, value: bytes) -> None:
        """Install one raw record produced by :meth:`records`."""
        if not key.startswith(DOC_KEY_PREFIX) or len(key) != 12:
            raise StorageError(f"malformed document record key {key!r}")
        self._backend.put(key, value)
        if self.journal is not None:
            self.journal.put(key, value)

    def clear(self) -> None:
        """Drop every stored document (ahead of a snapshot load)."""
        for key in list(self._backend.keys()):
            if key.startswith(DOC_KEY_PREFIX):
                self._backend.delete(key)
                if self.journal is not None:
                    self.journal.delete(key)
