"""Server-side encrypted document store — the DataStorage half of Storage.

The paper stores each document as a tuple ``(E_km(M_i), i)``.  The server
never sees plaintext; this store keeps exactly those opaque tuples, keyed
by document identifier, over any :class:`~repro.storage.kvstore.KvStore`.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ParameterError, StorageError
from repro.storage.kvstore import KvStore, MemoryKvStore

__all__ = ["EncryptedDocumentStore"]


def _doc_key(doc_id: int) -> bytes:
    if doc_id < 0:
        raise ParameterError("document ids must be non-negative")
    return b"doc:" + doc_id.to_bytes(8, "big")


class EncryptedDocumentStore:
    """Maps document ids to encrypted document bodies.

    >>> store = EncryptedDocumentStore()
    >>> store.put(3, b"<ciphertext>")
    >>> store.get(3)
    b'<ciphertext>'
    """

    def __init__(self, backend: KvStore | None = None) -> None:
        self._backend = backend if backend is not None else MemoryKvStore()

    def put(self, doc_id: int, ciphertext: bytes) -> None:
        """Store the encrypted body for *doc_id* (overwrites on update)."""
        self._backend.put(_doc_key(doc_id), ciphertext)

    def get(self, doc_id: int) -> bytes:
        """Return the encrypted body; raises if the id is unknown."""
        value = self._backend.get(_doc_key(doc_id))
        if value is None:
            raise StorageError(f"no document with id {doc_id}")
        return value

    def get_many(self, doc_ids: list[int]) -> list[tuple[int, bytes]]:
        """Fetch several documents, preserving the requested order."""
        return [(doc_id, self.get(doc_id)) for doc_id in doc_ids]

    def contains(self, doc_id: int) -> bool:
        """True iff a document with *doc_id* is stored."""
        return _doc_key(doc_id) in self._backend

    def delete(self, doc_id: int) -> bool:
        """Remove a document; True if it existed."""
        return self._backend.delete(_doc_key(doc_id))

    def __len__(self) -> int:
        return sum(1 for _ in self.ids())

    def ids(self) -> Iterator[int]:
        """Iterate over stored document ids."""
        for key in self._backend.keys():
            if key.startswith(b"doc:"):
                yield int.from_bytes(key[4:], "big")

    def total_bytes(self) -> int:
        """Total ciphertext bytes held (for storage-cost accounting)."""
        return sum(
            len(self._backend.get(key) or b"")
            for key in self._backend.keys()
            if key.startswith(b"doc:")
        )
