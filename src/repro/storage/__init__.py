"""Storage substrate: KV stores and the encrypted document store."""

from repro.storage.docstore import EncryptedDocumentStore
from repro.storage.kvstore import KvStore, LogKvStore, MemoryKvStore

__all__ = [
    "EncryptedDocumentStore",
    "KvStore",
    "LogKvStore",
    "MemoryKvStore",
]
