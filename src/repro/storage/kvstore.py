"""Key-value stores backing the server's document storage.

Two implementations behind one small interface:

* :class:`MemoryKvStore` — a dict, for tests and benchmarks.
* :class:`LogKvStore` — an append-only log file with checksummed records,
  crash-recovery on open (truncated/torn tails are dropped, corrupt records
  rejected), tombstone deletes, and offline compaction.  This is the
  "honest-but-curious server's disk": everything it persists is exactly the
  (encrypted) bytes the client sent, so the file doubles as an auditable
  record of what an adversarial server could see.
"""

from __future__ import annotations

import hashlib
import io
import os
import struct
from typing import Iterable, Iterator, Mapping, Protocol

from repro.errors import CorruptRecordError, ParameterError, StorageError

__all__ = ["KvStore", "MemoryKvStore", "LogKvStore"]

_MAGIC = b"RPKV"
# v2 adds batch-atomicity framing (the _BATCH/_COMMIT flags below); v1
# logs contain neither flag and recover identically under the v2 parser.
_VERSION = 2
_SUPPORTED_VERSIONS = frozenset({1, 2})
_TOMBSTONE = 0x01
_BATCH = 0x02    # member of a multi-record batch: apply only on commit
_COMMIT = 0x04   # empty-key marker: the preceding batch members are durable
_CHECKSUM_LEN = 8  # truncated SHA-256 is plenty for corruption detection


class KvStore(Protocol):
    """Minimal key-value interface used by the document store."""

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite *key*."""
        ...

    def get(self, key: bytes) -> bytes | None:
        """Return the value, or None if absent."""
        ...

    def delete(self, key: bytes) -> bool:
        """Remove *key*; return True if it was present."""
        ...

    def __contains__(self, key: bytes) -> bool: ...

    def __len__(self) -> int: ...

    def keys(self) -> Iterator[bytes]:
        """Iterate over live keys."""
        ...

    def apply_batch(self, upserts: Mapping[bytes, bytes],
                    deletes: Iterable[bytes]) -> int:
        """Apply many changes at once; return the bytes written."""
        ...


class MemoryKvStore:
    """Dict-backed store (volatile)."""

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite *key*."""
        self._data[bytes(key)] = bytes(value)

    def get(self, key: bytes) -> bytes | None:
        """Return the value, or None if absent."""
        return self._data.get(key)

    def delete(self, key: bytes) -> bool:
        """Remove *key*; return True if it was present."""
        return self._data.pop(key, None) is not None

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[bytes]:
        """Iterate over live keys (insertion order)."""
        return iter(list(self._data.keys()))

    def apply_batch(self, upserts: Mapping[bytes, bytes],
                    deletes: Iterable[bytes]) -> int:
        """Apply deletes then upserts; return an upsert byte count."""
        n_bytes = 0
        for key in deletes:
            self._data.pop(bytes(key), None)
        for key, value in upserts.items():
            self.put(key, value)
            n_bytes += len(key) + len(value)
        return n_bytes


def _checksum(payload: bytes) -> bytes:
    # Deliberately hashlib, not repro.crypto.sha256: the record checksum
    # is corruption detection, not protocol cryptography, so it must not
    # count toward the paper's crypto-op accounting — and the from-scratch
    # compression function would cap journal bandwidth at well under
    # 1 MB/s.  Same algorithm either way, so existing logs stay readable.
    return hashlib.sha256(payload).digest()[:_CHECKSUM_LEN]


def _fsync_dir(path: str) -> None:
    """fsync the directory containing *path*.

    File data reaching the platter is not enough after a create or a
    rename: the *directory entry* pointing at the file is metadata of the
    parent directory, and unless that is synced too, a power failure can
    resurrect the pre-rename file (or lose the new one entirely).
    """
    dirname = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _encode_record(flags: int, key: bytes, value: bytes) -> bytes:
    header = struct.pack(">BII", flags, len(key), len(value))
    payload = header + key + value
    return _checksum(payload) + payload


class LogKvStore:
    """Append-only-log store with checksums, recovery, and compaction.

    Record layout: ``checksum(8) | flags(1) | klen(4) | vlen(4) | key | value``.
    An in-memory index maps each live key to its latest value; ``open`` scans
    the log, stopping cleanly at a torn tail (the bytes after the last valid
    record are discarded on the next append).

    Multi-record batches are **atomic**: :meth:`apply_batch` marks every
    member record with the ``_BATCH`` flag and seals them with one
    ``_COMMIT`` marker before the single fsync.  Recovery buffers batch
    members and applies them only when their commit marker is intact — a
    crash mid-batch (torn member, or members written but no commit) rolls
    the whole batch back, so a durable server never reopens with half a
    ``BATCH_REQUEST`` applied.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        self._index: dict[bytes, bytes] = {}
        self._valid_length = 0
        self._dead_records = 0
        if os.path.exists(self._path):
            self._recover()
        else:
            with open(self._path, "wb") as fh:
                fh.write(_MAGIC + bytes([_VERSION]))
                fh.flush()
                os.fsync(fh.fileno())
            _fsync_dir(self._path)
            self._valid_length = len(_MAGIC) + 1

    def _apply_recovered(self, flags: int, key: bytes, value: bytes) -> None:
        if flags & _TOMBSTONE:
            if key in self._index:
                self._dead_records += 1
            self._index.pop(key, None)
            self._dead_records += 1
        else:
            if key in self._index:
                self._dead_records += 1
            self._index[key] = value

    def _recover(self) -> None:
        with open(self._path, "rb") as fh:
            header = fh.read(len(_MAGIC) + 1)
            if header[:len(_MAGIC)] != _MAGIC:
                raise StorageError(f"{self._path} is not a repro KV log")
            if header[len(_MAGIC)] not in _SUPPORTED_VERSIONS:
                raise StorageError("unsupported KV log version")
            # `cursor` tracks the raw file position; `offset` is the
            # committed watermark the next append resumes at.  Batch
            # members advance only the cursor — the watermark jumps past
            # them when (and only when) their commit marker is intact, so
            # an uncommitted batch is rolled back wholesale.
            cursor = offset = len(header)
            pending: list[tuple[int, bytes, bytes]] = []
            while True:
                record_start = cursor
                head = fh.read(_CHECKSUM_LEN + 9)
                if len(head) < _CHECKSUM_LEN + 9:
                    break  # clean EOF or torn header: stop here
                checksum = head[:_CHECKSUM_LEN]
                flags, klen, vlen = struct.unpack(
                    ">BII", head[_CHECKSUM_LEN:]
                )
                body = fh.read(klen + vlen)
                if len(body) < klen + vlen:
                    break  # torn body
                payload = head[_CHECKSUM_LEN:] + body
                if _checksum(payload) != checksum:
                    # A corrupt record mid-log (not a torn tail) is data
                    # loss we must not silently skip past.
                    remaining = fh.read(1)
                    if remaining:
                        raise CorruptRecordError(
                            f"corrupt record at offset {record_start}"
                        )
                    break  # corrupt final record == torn tail: drop it
                key = body[:klen]
                cursor = record_start + _CHECKSUM_LEN + 9 + klen + vlen
                if flags & _COMMIT:
                    for member in pending:
                        self._apply_recovered(*member)
                    pending = []
                    self._dead_records += 1  # the marker itself is overhead
                    offset = cursor
                elif flags & _BATCH:
                    pending.append((flags & ~_BATCH, key, body[klen:]))
                else:
                    if pending:
                        # A plain record can never follow open batch
                        # members: appends always resume at the watermark.
                        raise CorruptRecordError(
                            f"unterminated batch before offset {record_start}"
                        )
                    self._apply_recovered(flags, key, body[klen:])
                    offset = cursor
            self._valid_length = offset

    def _append(self, record: bytes) -> None:
        with open(self._path, "r+b") as fh:
            fh.seek(self._valid_length)
            fh.write(record)
            fh.truncate()
            fh.flush()
            os.fsync(fh.fileno())
        self._valid_length += len(record)

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite *key* durably."""
        key, value = bytes(key), bytes(value)
        if not key:
            raise ParameterError("keys must be non-empty")
        if key in self._index:
            self._dead_records += 1
        self._append(_encode_record(0, key, value))
        self._index[key] = value

    def get(self, key: bytes) -> bytes | None:
        """Return the latest value for *key*, or None."""
        return self._index.get(key)

    def delete(self, key: bytes) -> bool:
        """Tombstone *key*; return True if it was present."""
        if key not in self._index:
            return False
        self._append(_encode_record(_TOMBSTONE, bytes(key), b""))
        del self._index[key]
        self._dead_records += 2
        return True

    def __contains__(self, key: bytes) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[bytes]:
        """Iterate over live keys."""
        return iter(list(self._index.keys()))

    def apply_batch(self, upserts: Mapping[bytes, bytes],
                    deletes: Iterable[bytes]) -> int:
        """Apply many changes with ONE append, ONE fsync — atomically.

        Tombstones go first so that a key being both deleted and re-put
        within the batch replays to its new value.  A multi-record batch
        is framed (``_BATCH`` members sealed by a ``_COMMIT`` marker) so
        recovery applies it all or not at all; a single-record batch
        needs no framing — one record is atomic by itself.  Returns the
        number of log bytes written (0 when the batch is empty).
        """
        records: list[tuple[int, bytes, bytes]] = []
        dropped: list[bytes] = []
        for key in deletes:
            key = bytes(key)
            if key in self._index:
                records.append((_TOMBSTONE, key, b""))
                dropped.append(key)
        puts: dict[bytes, bytes] = {}
        for key, value in upserts.items():
            key, value = bytes(key), bytes(value)
            if not key:
                raise ParameterError("keys must be non-empty")
            records.append((0, key, value))
            puts[key] = value
        if not records:
            return 0
        if len(records) == 1:
            chunks = [_encode_record(*records[0])]
        else:
            chunks = [_encode_record(flags | _BATCH, key, value)
                      for flags, key, value in records]
            chunks.append(_encode_record(_COMMIT, b"", b""))
            self._dead_records += 1  # the commit marker is pure overhead
        blob = b"".join(chunks)
        self._append(blob)
        for key in dropped:
            del self._index[key]
            self._dead_records += 2
        for key, value in puts.items():
            if key in self._index:
                self._dead_records += 1
            self._index[key] = value
        return len(blob)

    @property
    def dead_records(self) -> int:
        """Count of overwritten/tombstoned records eligible for compaction."""
        return self._dead_records

    def compact(self) -> None:
        """Rewrite the log keeping only live records (atomic via rename)."""
        tmp_path = self._path + ".compact"
        buffer = io.BytesIO()
        buffer.write(_MAGIC + bytes([_VERSION]))
        for key, value in self._index.items():
            buffer.write(_encode_record(0, key, value))
        with open(tmp_path, "wb") as fh:
            fh.write(buffer.getvalue())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, self._path)
        _fsync_dir(self._path)
        self._valid_length = buffer.tell()
        self._dead_records = 0
