"""Zipf-distributed sampling for keyword frequencies.

Keyword popularity in text corpora follows a Zipf law; the workload
generator uses this sampler so synthetic databases have realistic hot/cold
keyword skew (a handful of keywords matching many documents, a long tail
matching one).
"""

from __future__ import annotations

import bisect

from repro.crypto.rng import RandomSource
from repro.errors import ParameterError

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Samples ranks 0..n-1 with P(rank k) ∝ 1/(k+1)^s via inverse CDF.

    >>> from repro.crypto.rng import HmacDrbg
    >>> sampler = ZipfSampler(100, s=1.0)
    >>> 0 <= sampler.sample(HmacDrbg(1)) < 100
    True
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n < 1:
            raise ParameterError("ZipfSampler needs at least one rank")
        if s < 0:
            raise ParameterError("Zipf exponent must be non-negative")
        self.n = n
        self.s = s
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: RandomSource) -> int:
        """Draw one rank."""
        # 53-bit uniform in [0, 1).
        u = rng.randint_below(1 << 53) / (1 << 53)
        return bisect.bisect_right(self._cdf, u)

    def probability(self, rank: int) -> float:
        """P(rank) for diagnostics."""
        if not 0 <= rank < self.n:
            raise ParameterError("rank out of range")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - lower
