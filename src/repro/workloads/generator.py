"""Synthetic document-collection generator with controlled shape.

The benchmarks need collections with an exact number of documents *n*, an
(approximately) exact number of unique keywords *u*, and Zipf-skewed
keyword popularity.  Everything is driven by a seeded DRBG so runs are
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.documents import Document
from repro.crypto.rng import HmacDrbg, RandomSource
from repro.errors import ParameterError
from repro.workloads.zipf import ZipfSampler

__all__ = ["WorkloadSpec", "generate_collection", "keyword_universe"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic collection."""

    num_documents: int = 100
    unique_keywords: int = 200
    keywords_per_doc: int = 10
    doc_size_bytes: int = 256
    zipf_s: float = 1.0
    seed: int = 2010

    def __post_init__(self) -> None:
        if self.num_documents < 1:
            raise ParameterError("need at least one document")
        if self.unique_keywords < self.keywords_per_doc:
            raise ParameterError(
                "unique_keywords must be >= keywords_per_doc"
            )
        if self.doc_size_bytes < 1:
            raise ParameterError("documents must have at least one byte")


def keyword_universe(size: int) -> list[str]:
    """Deterministic keyword vocabulary kw0000, kw0001, ..."""
    return [f"kw{i:05d}" for i in range(size)]


def generate_collection(spec: WorkloadSpec,
                        rng: RandomSource | None = None) -> list[Document]:
    """Generate documents per *spec*.

    Every keyword rank is sampled from a Zipf law; each document draws
    distinct keywords.  To guarantee the full universe appears (so u is
    exact, as the scaling benches require), keyword i is force-assigned to
    document i mod n.
    """
    rng = rng if rng is not None else HmacDrbg(spec.seed)
    universe = keyword_universe(spec.unique_keywords)
    sampler = ZipfSampler(spec.unique_keywords, spec.zipf_s)

    keyword_sets: list[set[str]] = [set() for _ in range(spec.num_documents)]
    # Force-cover the universe.
    for i, keyword in enumerate(universe):
        keyword_sets[i % spec.num_documents].add(keyword)
    # Fill with Zipf draws.
    for keywords in keyword_sets:
        guard = 0
        while len(keywords) < spec.keywords_per_doc:
            keywords.add(universe[sampler.sample(rng)])
            guard += 1
            if guard > 100 * spec.keywords_per_doc:  # pragma: no cover
                raise ParameterError("keyword sampling failed to converge")

    documents = []
    for doc_id, keywords in enumerate(keyword_sets):
        documents.append(Document(
            doc_id=doc_id,
            data=rng.random_bytes(spec.doc_size_bytes),
            keywords=frozenset(keywords),
        ))
    return documents
