"""Interleaved search/update operation streams (paper Table 1's x).

Table 1 characterizes Scheme 2's search cost as O(log u + l/2x) where x is
"the average number of times updating the database between every two
searches".  These generators produce operation streams with a controlled
update:search ratio so the T1-search benchmark can sweep x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.documents import Document
from repro.crypto.rng import RandomSource
from repro.errors import ParameterError

__all__ = ["Operation", "interleaved_stream", "gp_day_stream"]


@dataclass(frozen=True)
class Operation:
    """One workload step: either a search or an update batch."""

    kind: str  # "search" | "update"
    keyword: str | None = None
    documents: tuple[Document, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("search", "update"):
            raise ParameterError("operation kind must be search or update")
        if self.kind == "search" and self.keyword is None:
            raise ParameterError("searches need a keyword")
        if self.kind == "update" and not self.documents:
            raise ParameterError("updates need documents")


def interleaved_stream(
    keywords: Sequence[str],
    new_documents: Sequence[Document],
    updates_per_search: int,
    rng: RandomSource,
) -> Iterator[Operation]:
    """Yield updates and searches at ratio x = *updates_per_search*.

    Consumes *new_documents* one per update; after each group of x updates
    emits one search for a uniformly chosen keyword.  Stops when the
    documents run out (emitting a final search).
    """
    if updates_per_search < 1:
        raise ParameterError("updates_per_search must be >= 1")
    pending = 0
    for doc in new_documents:
        yield Operation(kind="update", documents=(doc,))
        pending += 1
        if pending == updates_per_search:
            keyword = keywords[rng.randint_below(len(keywords))]
            yield Operation(kind="search", keyword=keyword)
            pending = 0
    if pending:
        keyword = keywords[rng.randint_below(len(keywords))]
        yield Operation(kind="search", keyword=keyword)


def gp_day_stream(
    patient_keywords: Sequence[str],
    visit_documents: Sequence[Document],
) -> Iterator[Operation]:
    """The §6 GP workflow: retrieve a record, then update it, per patient.

    Alternates search(patient) / update(new visit note) — the
    "interleaved with search" regime where Scheme 2's chain walk stays
    short (x ≈ 1).
    """
    if len(patient_keywords) != len(visit_documents):
        raise ParameterError("one visit document per patient keyword")
    for keyword, doc in zip(patient_keywords, visit_documents):
        yield Operation(kind="search", keyword=keyword)
        yield Operation(kind="update", documents=(doc,))
