"""Operation-stream replay: drive any SSE client from an op stream.

Benchmarks and examples repeatedly need "run this interleaving against
that client and collect costs"; this is that loop, once, with stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.api import SseClient
from repro.workloads.ops import Operation

__all__ = ["ReplayStats", "replay"]


@dataclass
class ReplayStats:
    """What a replay run did and what it cost."""

    searches: int = 0
    updates: int = 0
    documents_added: int = 0
    results_returned: int = 0
    search_rounds: int = 0
    update_rounds: int = 0
    search_bytes: int = 0
    update_bytes: int = 0
    per_search_results: list[int] = field(default_factory=list)

    @property
    def operations(self) -> int:
        """Total operations replayed."""
        return self.searches + self.updates


def replay(client: SseClient, stream: Iterable[Operation],
           verify_against: dict[str, set[int]] | None = None) -> ReplayStats:
    """Run every operation in *stream* against *client*.

    When *verify_against* (keyword -> expected id set, updated as the
    stream's documents are applied) is provided, every search result is
    checked against it and a mismatch raises ``AssertionError`` — turning
    any replay into a correctness oracle.
    """
    stats = ReplayStats()
    channel = client.channel

    for op in stream:
        before = channel.stats
        channel.reset_stats()
        if op.kind == "update":
            client.add_documents(list(op.documents))
            run = channel.stats
            stats.updates += 1
            stats.documents_added += len(op.documents)
            stats.update_rounds += run.rounds
            stats.update_bytes += run.total_bytes
            if verify_against is not None:
                for doc in op.documents:
                    for keyword in doc.keywords:
                        verify_against.setdefault(keyword, set()).add(
                            doc.doc_id
                        )
        else:
            assert op.keyword is not None
            result = client.search(op.keyword)
            run = channel.stats
            stats.searches += 1
            stats.results_returned += len(result.doc_ids)
            stats.per_search_results.append(len(result.doc_ids))
            stats.search_rounds += run.rounds
            stats.search_bytes += run.total_bytes
            if verify_against is not None:
                expected = sorted(verify_against.get(op.keyword, set()))
                assert result.doc_ids == expected, (
                    f"replay divergence on {op.keyword!r}: "
                    f"{result.doc_ids} != {expected}"
                )
        # Restore cumulative counters on the shared channel.
        channel.stats.rounds += before.rounds
        channel.stats.client_to_server_bytes += before.client_to_server_bytes
        channel.stats.server_to_client_bytes += before.server_to_client_bytes
        channel.stats.simulated_time_s += before.simulated_time_s
        channel.stats.messages += before.messages
    return stats
