"""Workload generators: Zipf keywords, synthetic collections, op streams."""

from repro.workloads.generator import (WorkloadSpec, generate_collection,
                                       keyword_universe)
from repro.workloads.ops import Operation, gp_day_stream, interleaved_stream
from repro.workloads.replay import ReplayStats, replay
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "Operation",
    "ReplayStats",
    "WorkloadSpec",
    "ZipfSampler",
    "generate_collection",
    "gp_day_stream",
    "interleaved_stream",
    "keyword_universe",
    "replay",
]
