"""Workload generators: Zipf keywords, synthetic collections, op streams."""

from repro.workloads.generator import (WorkloadSpec, generate_collection,
                                       keyword_universe)
from repro.workloads.ops import Operation, gp_day_stream, interleaved_stream
from repro.workloads.replay import ReplayStats, replay
from repro.workloads.tenants import (SimulationReport, TenantProfile,
                                     TenantStats, run_simulation,
                                     synthesize_tenants, tenant_corpus)
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "Operation",
    "ReplayStats",
    "SimulationReport",
    "TenantProfile",
    "TenantStats",
    "WorkloadSpec",
    "ZipfSampler",
    "generate_collection",
    "gp_day_stream",
    "interleaved_stream",
    "keyword_universe",
    "replay",
    "run_simulation",
    "synthesize_tenants",
    "tenant_corpus",
]
