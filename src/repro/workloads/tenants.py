"""Synthetic multi-tenant traffic: Zipf-skewed fleets of small clients.

Real multi-tenant services are dominated by their *distribution*: a few
big tenants hold most of the documents and issue most of the requests,
followed by a long tail of tiny ones.  :func:`synthesize_tenants` builds
that shape — corpus sizes and arrival rates both Zipf-distributed over
the tenant ranks — and :func:`run_simulation` drives the whole fleet
against any deployment (in-process gateway, TCP server, sharded
service), interleaving tenants' requests the way concurrent arrivals
would land, and reporting per-tenant latency/byte/document summaries.

``benchmarks/bench_tenant_capacity.py`` uses this module to sweep the
tenants x docs x qps space into a capacity curve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.documents import Document
from repro.crypto.rng import HmacDrbg, RandomSource
from repro.errors import ParameterError, QuotaExceededError, ReproError
from repro.obs.opcount import active_recorder, diff_counts
from repro.workloads.zipf import ZipfSampler

__all__ = ["TenantProfile", "TenantStats", "SimulationReport",
           "synthesize_tenants", "tenant_corpus", "run_simulation"]


@dataclass(frozen=True)
class TenantProfile:
    """Shape of one synthetic tenant's data and traffic."""

    tenant_id: str
    #: Documents the tenant uploads in the store phase.
    num_documents: int
    #: Searches the tenant issues in the query phase (its arrival rate).
    searches: int
    #: Keyword universe/doc shape — small by default; the interesting
    #: dimension here is the tenant count, not the per-tenant corpus.
    unique_keywords: int = 8
    keywords_per_doc: int = 3
    doc_size_bytes: int = 64

    def __post_init__(self) -> None:
        if self.num_documents < 1:
            raise ParameterError("a tenant needs at least one document")
        if self.searches < 0:
            raise ParameterError("searches must be >= 0")
        if not 1 <= self.keywords_per_doc <= self.unique_keywords:
            raise ParameterError(
                "need 1 <= keywords_per_doc <= unique_keywords")


def synthesize_tenants(count: int, *, total_documents: int = 512,
                       total_searches: int = 256, zipf_s: float = 1.0,
                       min_documents: int = 1, prefix: str = "tenant",
                       ) -> list[TenantProfile]:
    """Zipf-shaped fleet: tenant rank k gets ~P_zipf(k) of docs and qps.

    The first-ranked tenant is the whale; the tail tenants each hold
    ``min_documents`` and search once.  Totals are approximate (rounding
    per rank), deterministic, and independent of any RNG.
    """
    if count < 1:
        raise ParameterError("need at least one tenant")
    sampler = ZipfSampler(count, zipf_s)
    profiles = []
    for rank in range(count):
        share = sampler.probability(rank)
        profiles.append(TenantProfile(
            tenant_id=f"{prefix}-{rank:04d}",
            num_documents=max(min_documents,
                              round(total_documents * share)),
            searches=max(1, round(total_searches * share)),
        ))
    return profiles


def tenant_corpus(profile: TenantProfile,
                  rng: RandomSource) -> list[Document]:
    """The tenant's document collection (its own keyword universe)."""
    universe = [f"{profile.tenant_id}:kw{i:03d}"
                for i in range(profile.unique_keywords)]
    sampler = ZipfSampler(profile.unique_keywords)
    documents = []
    for doc_id in range(profile.num_documents):
        keywords = {universe[doc_id % profile.unique_keywords]}
        while len(keywords) < profile.keywords_per_doc:
            keywords.add(universe[sampler.sample(rng)])
        documents.append(Document(
            doc_id=doc_id,
            data=rng.random_bytes(profile.doc_size_bytes),
            keywords=frozenset(keywords),
        ))
    return documents


@dataclass
class TenantStats:
    """What one tenant experienced during a simulation."""

    tenant_id: str
    documents_stored: int = 0
    searches: int = 0
    results: int = 0
    quota_rejections: int = 0
    errors: int = 0
    store_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    search_latencies_s: list[float] = field(default_factory=list)
    #: Client-side crypto op counts (op name -> count) attributed to this
    #: tenant — populated only while a :func:`repro.obs.opcount.count_ops`
    #: scope is active, empty otherwise.
    crypto_ops: dict[str, int] = field(default_factory=dict)


def _attribute_ops(stats: TenantStats, before: dict[str, int]) -> None:
    """Charge the thread's crypto ops since *before* to one tenant.

    The simulator is single-threaded, so the recorder's per-thread delta
    between two points belongs entirely to the tenant whose request ran
    between them.  Under the default null recorder both snapshots are
    empty and this is free.
    """
    for op, count in diff_counts(
            active_recorder().thread_snapshot(), before).items():
        stats.crypto_ops[op] = stats.crypto_ops.get(op, 0) + count


def _is_quota_rejection(exc: ReproError) -> bool:
    # In-process deployments raise QuotaExceededError directly; over TCP
    # it arrives as a ProtocolError carrying the server's class name.
    return isinstance(exc, QuotaExceededError) \
        or "QuotaExceededError" in str(exc)


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


@dataclass
class SimulationReport:
    """Fleet-wide outcome of :func:`run_simulation`."""

    tenants: dict[str, TenantStats]
    wall_seconds: float = 0.0

    @property
    def search_latencies_s(self) -> list[float]:
        out: list[float] = []
        for stats in self.tenants.values():
            out.extend(stats.search_latencies_s)
        return out

    def latency_percentile(self, q: float) -> float:
        """Fleet-wide search latency percentile (q in [0, 1])."""
        return _percentile(self.search_latencies_s, q)

    def summary(self) -> dict:
        """JSON-safe rollup for bench emission."""
        latencies = self.search_latencies_s
        return {
            "tenants": len(self.tenants),
            "documents": sum(s.documents_stored
                             for s in self.tenants.values()),
            "searches": len(latencies),
            "quota_rejections": sum(s.quota_rejections
                                    for s in self.tenants.values()),
            "errors": sum(s.errors for s in self.tenants.values()),
            "bytes_sent": sum(s.bytes_sent for s in self.tenants.values()),
            "bytes_received": sum(s.bytes_received
                                  for s in self.tenants.values()),
            "crypto_ops": sum(sum(s.crypto_ops.values())
                              for s in self.tenants.values()),
            "wall_seconds": self.wall_seconds,
            "search_p50_ms": 1e3 * self.latency_percentile(0.50),
            "search_p95_ms": 1e3 * self.latency_percentile(0.95),
            "search_p99_ms": 1e3 * self.latency_percentile(0.99),
        }


def run_simulation(profiles: list[TenantProfile], client_for, *,
                   store_batch: int = 32, seed: int = 2010,
                   ) -> SimulationReport:
    """Drive every tenant's store + search traffic; return the report.

    *client_for(profile)* returns a ready (handshaken, if the target is
    tenant-aware) :class:`~repro.core.api.SseClient` for the tenant; the
    simulator closes it when done.  The store phase uploads each
    tenant's corpus in ``store_batch`` chunks; the query phase
    deterministically interleaves all tenants' searches — Zipf-skewed
    keyword choice per tenant — so concurrent-looking arrival order hits
    the service the way a real fleet would.

    Per-item quota rejections (:class:`QuotaExceededError` or its wire
    ``ERROR`` form) are *counted, not raised*: an over-quota tenant is an
    expected outcome of a capacity run, not a failed simulation.
    """
    rng = HmacDrbg(seed)
    report = SimulationReport(tenants={
        p.tenant_id: TenantStats(p.tenant_id) for p in profiles})
    started = time.perf_counter()
    clients: dict[str, object] = {}
    corpora: dict[str, list[Document]] = {}
    try:
        for profile in profiles:
            clients[profile.tenant_id] = client_for(profile)
            corpora[profile.tenant_id] = tenant_corpus(profile, rng)
        # Store phase: per-tenant batched uploads.
        for profile in profiles:
            stats = report.tenants[profile.tenant_id]
            client = clients[profile.tenant_id]
            corpus = corpora[profile.tenant_id]
            store_started = time.perf_counter()
            ops_before = active_recorder().thread_snapshot()
            for base in range(0, len(corpus), store_batch):
                chunk = corpus[base:base + store_batch]
                try:
                    client.add_documents(chunk)
                    stats.documents_stored += len(chunk)
                except ReproError as exc:
                    if _is_quota_rejection(exc):
                        stats.quota_rejections += 1
                    else:
                        stats.errors += 1
            _attribute_ops(stats, ops_before)
            stats.store_seconds = time.perf_counter() - store_started
        # Query phase: one global, deterministically shuffled arrival
        # order across all tenants.
        arrivals: list[tuple[TenantProfile, str]] = []
        for profile in profiles:
            universe = [f"{profile.tenant_id}:kw{i:03d}"
                        for i in range(profile.unique_keywords)]
            kw_sampler = ZipfSampler(profile.unique_keywords)
            for _ in range(profile.searches):
                arrivals.append(
                    (profile, universe[kw_sampler.sample(rng)]))
        for index in range(len(arrivals) - 1, 0, -1):
            other = rng.randint_below(index + 1)
            arrivals[index], arrivals[other] = \
                arrivals[other], arrivals[index]
        for profile, keyword in arrivals:
            stats = report.tenants[profile.tenant_id]
            client = clients[profile.tenant_id]
            search_started = time.perf_counter()
            ops_before = active_recorder().thread_snapshot()
            try:
                result = client.search(keyword)
            except ReproError as exc:
                if _is_quota_rejection(exc):
                    stats.quota_rejections += 1
                else:
                    stats.errors += 1
                continue
            finally:
                _attribute_ops(stats, ops_before)
            stats.search_latencies_s.append(
                time.perf_counter() - search_started)
            stats.searches += 1
            stats.results += len(result)
        for profile in profiles:
            channel_stats = getattr(clients[profile.tenant_id].channel,
                                    "stats", None)
            if channel_stats is not None:
                stats = report.tenants[profile.tenant_id]
                stats.bytes_sent = channel_stats.client_to_server_bytes
                stats.bytes_received = channel_stats.server_to_client_bytes
    finally:
        for client in clients.values():
            try:
                client.close()
            except (ReproError, OSError):  # pragma: no cover - teardown
                pass
    report.wall_seconds = time.perf_counter() - started
    return report
