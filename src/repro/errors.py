"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class.  Crypto failures deliberately carry little detail
to avoid turning error messages into padding/validity oracles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, tag mismatch, ...)."""


class AuthenticationError(CryptoError):
    """Ciphertext failed integrity verification."""


class PaddingError(CryptoError):
    """Invalid padding encountered during decryption."""


class ParameterError(ReproError, ValueError):
    """An argument was structurally invalid (wrong size, range, type)."""


class CapacityError(ReproError):
    """A fixed-capacity structure (bitset index, hash chain) overflowed."""


class ChainExhaustedError(CapacityError):
    """The pseudo-random chain of Scheme 2 has been fully consumed (§5.6)."""


class ProtocolError(ReproError):
    """A protocol message was malformed or arrived out of order."""


class ServiceStoppedError(ReproError):
    """An operation was attempted on a stopped or draining service."""


class AuthError(ReproError):
    """A session handshake presented an unknown tenant or a bad token.

    Deliberately terminal: transports must never treat an authentication
    rejection as a transient failure and retry it (see
    :mod:`repro.net.retry`).
    """


class QuotaExceededError(ReproError):
    """A tenant's admission quota (documents or request rate) was hit."""


class DeadlineError(ReproError, TimeoutError):
    """A bounded wait (job result, drain, shutdown) ran out of time.

    Inherits :class:`TimeoutError` so callers written against the builtin
    keep working.
    """


class RetryExhaustedError(ProtocolError):
    """A retryable request failed on every attempt the policy allowed."""


class UnknownKeywordError(ReproError, KeyError):
    """A trapdoor referenced a keyword with no searchable representation."""


class StorageError(ReproError):
    """The underlying key-value or document store failed."""


class CorruptRecordError(StorageError):
    """A persisted record failed its checksum (torn write / bit rot)."""
