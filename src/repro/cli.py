"""Command-line PHR⁺ client — searchable encrypted storage in a directory.

A minimal but complete durable deployment of ANY registered scheme::

    python -m repro.cli init      --home ~/.phr --scheme scheme2
    python -m repro.cli store     --home ~/.phr --id 0 --keywords flu,fever \
                                  --text "visit note"
    python -m repro.cli load      --home ~/.phr --input docs.jsonl \
                                  --batch-size 64
    python -m repro.cli search    --home ~/.phr --keyword flu
    python -m repro.cli remove    --home ~/.phr --id 0 --keywords flu,fever
    python -m repro.cli stats     --home ~/.phr

``load`` bulk-imports documents from a JSONL file (one object per line:
``{"id": 0, "text": "...", "keywords": ["flu"]}``), shipping each chunk of
``--batch-size`` documents through the batched update pipeline — one round
trip, one server lock, one fsync per chunk — and reports the wire-level
batching stats afterwards.

Layout of ``--home``:

* ``config.json`` — which scheme this store runs and its structural
  options (chain length, capacity, …) so later commands reconstruct the
  exact same client/server pair;
* ``server.log`` — the honest-but-curious server's entire persisted state
  (checksummed append-only log: encrypted bodies + index records), kept
  by the generic :class:`~repro.core.persistence.DurableServer`;
* ``client.json`` — the client's non-key state (counters, epoch; no key
  material), written through ``export_state``/``import_state``;
* ``master.key``  — the master key (and, for scheme 1, the ElGamal
  trapdoor keypair), mode 0600.  In a real deployment this file would
  live in a vault/smartcard.

``--data-dir`` points the server log somewhere other than ``--home`` —
e.g. a different disk for the bulky encrypted state while the small key
and client files stay in the home directory.

Everything in ``server.log`` is exactly what an adversarial server would
see — inspect it with ``stats`` or a hex dumper to convince yourself no
keyword survives in the clear.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.documents import Document
from repro.core.keys import MasterKey, keygen
from repro.core.persistence import (DurableServer, export_client_state,
                                    restore_client_state)
from repro.core.registry import (available_schemes, make_client, make_server,
                                 make_service, scheme_description)
from repro.errors import ReproError
from repro.net.channel import Channel
from repro.obs.metrics import Metrics

__all__ = ["build_parser", "cmd_compact", "cmd_export_state", "cmd_import_state",
           "cmd_init", "cmd_load", "cmd_remove", "cmd_schemes", "cmd_search",
           "cmd_serve", "cmd_stats", "cmd_store", "cmd_tenant_add",
           "cmd_tenant_list", "cmd_tenant_quota", "main"]

_CONFIG_FORMAT = "repro.store/1"
_DEFAULT_CHAIN_LENGTH = 4096
_DEFAULT_CAPACITY = 1024

#: How often the serve loop wakes to check the metrics-dump schedule and
#: the stop event.  The loop blocks on ``Event.wait``, not ``time.sleep``,
#: so tests (and embedders) stop it promptly by setting the event.
_SERVE_POLL_S = 0.5

#: Structural options captured at ``init`` time, per scheme.  Everything
#: else falls back to the registry builder's defaults.
_INIT_OPTIONS = {
    "scheme2": {"chain_length": _DEFAULT_CHAIN_LENGTH},
    "scheme1": {"capacity": _DEFAULT_CAPACITY},
    "scheme3-fp": {"chain_length": _DEFAULT_CHAIN_LENGTH},
}


def _paths(home: str) -> dict[str, str]:
    return {
        "config": os.path.join(home, "config.json"),
        "client": os.path.join(home, "client.json"),
        "key": os.path.join(home, "master.key"),
    }


def _data_dir(args: argparse.Namespace) -> str:
    data_dir = getattr(args, "data_dir", None)
    return data_dir if data_dir else args.home


def _load_config(home: str) -> dict:
    path = _paths(home)["config"]
    if not os.path.exists(path):
        # Stores created before config.json existed were always scheme 2.
        return {"format": _CONFIG_FORMAT, "scheme": "scheme2",
                "options": {"chain_length": _DEFAULT_CHAIN_LENGTH}}
    with open(path) as fh:
        config = json.load(fh)
    if config.get("format") != _CONFIG_FORMAT:
        raise ReproError(f"unrecognized store config format in {path}")
    return config


def _load_key_payload(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _store_options(home: str) -> tuple[str, dict]:
    """(scheme, structural options incl. keypair) recorded at init time."""
    paths = _paths(home)
    if not os.path.exists(paths["key"]):
        raise ReproError(f"{home} is not initialized (run `init` first)")
    config = _load_config(home)
    options = dict(config.get("options", {}))
    payload = _load_key_payload(paths["key"])
    if "keypair" in payload:
        from repro.crypto.elgamal import ElGamalKeyPair
        options["keypair"] = ElGamalKeyPair.from_json(payload["keypair"])
    return config["scheme"], options


def _open(home: str, data_dir: str, metrics: Metrics | None = None):
    """Rebuild ``(client, durable_server, scheme_name)`` from disk."""
    paths = _paths(home)
    if not os.path.exists(paths["key"]):
        raise ReproError(f"{home} is not initialized (run `init` first)")
    config = _load_config(home)
    scheme = config["scheme"]
    options = dict(config.get("options", {}))
    payload = _load_key_payload(paths["key"])
    master_key = MasterKey(k_m=bytes.fromhex(payload["k_m"]),
                           k_w=bytes.fromhex(payload["k_w"]))
    if "keypair" in payload:
        from repro.crypto.elgamal import ElGamalKeyPair
        options["keypair"] = ElGamalKeyPair.from_json(payload["keypair"])
    server = make_server(scheme, data_dir=data_dir, **options)
    if metrics is not None:
        server.metrics = metrics  # storage + batch metrics share a registry
    # The client is built through the scheme registry with the SAME
    # structural options recorded at init time.
    client = make_client(scheme, master_key,
                         channel=Channel(server, metrics=metrics),
                         **options)
    if os.path.exists(paths["client"]):
        with open(paths["client"]) as fh:
            restore_client_state(client, fh.read())
    return client, server, scheme


def _save_client(home: str, client) -> None:
    with open(_paths(home)["client"], "w") as fh:
        fh.write(export_client_state(client))


def cmd_init(args: argparse.Namespace) -> int:
    paths = _paths(args.home)
    os.makedirs(args.home, exist_ok=True)
    if os.path.exists(paths["key"]):
        print(f"{args.home} already initialized", file=sys.stderr)
        return 1
    master_key = keygen()
    payload = {"k_m": master_key.k_m.hex(), "k_w": master_key.k_w.hex()}
    if args.scheme == "scheme1":
        from repro.crypto.elgamal import generate_keypair
        payload["keypair"] = generate_keypair().to_json()
    fd = os.open(paths["key"], os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600)
    with os.fdopen(fd, "w") as fh:
        json.dump(payload, fh)
    with open(paths["config"], "w") as fh:
        json.dump({"format": _CONFIG_FORMAT, "scheme": args.scheme,
                   "options": _INIT_OPTIONS.get(args.scheme, {})}, fh)
    client, server, _ = _open(args.home, _data_dir(args))
    _save_client(args.home, client)
    server.close()
    print(f"initialized encrypted store in {args.home} "
          f"(scheme: {args.scheme})")
    return 0


def _parse_keywords(raw: str) -> frozenset[str]:
    return frozenset(part for part in raw.split(",") if part.strip())


def cmd_store(args: argparse.Namespace) -> int:
    client, server, _ = _open(args.home, _data_dir(args))
    text = args.text if args.text is not None else sys.stdin.read()
    document = Document(args.id, text.encode("utf-8"),
                        _parse_keywords(args.keywords))
    client.add_documents([document])
    _save_client(args.home, client)
    server.close()
    counter = ""
    if hasattr(client, "ctr"):
        counter = (f", counter {client.ctr}/{client.chain_length}")
    print(f"stored document {args.id} "
          f"({len(document.keywords)} keywords{counter})")
    return 0


def _read_document_lines(fh) -> list[Document]:
    documents = []
    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            documents.append(Document(
                int(record["id"]),
                str(record.get("text", "")).encode("utf-8"),
                frozenset(str(w) for w in record.get("keywords", ())),
            ))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad document on line {lineno}: {exc}")
    return documents


def cmd_load(args: argparse.Namespace) -> int:
    """Bulk-import JSONL documents through the batched update pipeline."""
    if args.batch_size < 1:
        print("error: --batch-size must be at least 1", file=sys.stderr)
        return 1
    if args.input:
        with open(args.input) as fh:
            documents = _read_document_lines(fh)
    else:
        documents = _read_document_lines(sys.stdin)
    if not documents:
        print("nothing to load")
        return 0
    client, server, _ = _open(args.home, _data_dir(args))
    for start in range(0, len(documents), args.batch_size):
        client.add_documents(documents[start:start + args.batch_size])
    _save_client(args.home, client)
    server.close()
    stats = client.channel.stats
    chunks = -(-len(documents) // args.batch_size)
    print(f"loaded {len(documents)} document(s) in {chunks} chunk(s) "
          f"of <= {args.batch_size}")
    print(f"round trips: {stats.rounds}; batch frames: {stats.batches} "
          f"({stats.batched_messages} messages batched)")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    client, server, _ = _open(args.home, _data_dir(args))
    result = client.search(args.keyword)
    _save_client(args.home, client)  # searches move the Opt-2 flag
    server.close()
    walk = ""
    steps = getattr(server, "chain_steps_last_search", None)
    if steps is not None:
        walk = f" (chain walk: {steps} steps)"
    print(f"{len(result.doc_ids)} match(es) for {args.keyword!r}{walk}")
    for doc_id, body in zip(result.doc_ids, result.documents):
        print(f"--- doc {doc_id} ---")
        print(body.decode("utf-8", errors="replace"))
    return 0


def cmd_remove(args: argparse.Namespace) -> int:
    client, server, scheme = _open(args.home, _data_dir(args))
    document = Document(args.id, b"", _parse_keywords(args.keywords))
    try:
        # Every SseClient has remove_documents; schemes without removal
        # inherit the base implementation, which raises.
        client.remove_documents([document])
    except NotImplementedError:
        print(f"error: scheme {scheme!r} does not support removal",
              file=sys.stderr)
        return 1
    _save_client(args.home, client)
    server.close()
    print(f"removed document {args.id}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if args.live:
        # Ask a running `serve` instance instead of opening the store —
        # the whole point is a snapshot without touching the serving
        # process or its lock on the log.
        from repro.net.tcp import request_stats
        if args.port is None:
            print("error: stats --live requires --port", file=sys.stderr)
            return 1
        stats = request_stats(args.host, args.port)
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    client, server, scheme = _open(args.home, _data_dir(args))
    log_path = os.path.join(_data_dir(args), "server.log")
    print(f"scheme:             {scheme}")
    print(f"documents stored:   {len(server.documents)}")
    print(f"unique keywords:    {server.unique_keywords} (as opaque tags)")
    if hasattr(client, "ctr"):
        print(f"update counter:     {client.ctr}/{client.chain_length} "
              f"(epoch {client.epoch})")
    print(f"server log size:    {os.path.getsize(log_path)} bytes")
    print(f"live records:       {len(server.store)}")
    print(f"dead log records:   {server.store.dead_records} "
          f"(ratio {server.dead_ratio:.2f}; run `compact` to reclaim)")
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    for name in available_schemes():
        print(f"{name:<10} {scheme_description(name)}")
    return 0


def cmd_export_state(args: argparse.Namespace) -> int:
    """Print the client's non-key state (counters, epoch …) as JSON."""
    client, _, _ = _open(args.home, _data_dir(args))
    state = export_client_state(client)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(state + "\n")
        print(f"exported client state to {args.output}")
    else:
        print(state)
    return 0


def cmd_import_state(args: argparse.Namespace) -> int:
    """Adopt client state exported elsewhere (same scheme and options)."""
    client, _, _ = _open(args.home, _data_dir(args))
    if args.input:
        with open(args.input) as fh:
            state = fh.read()
    else:
        state = sys.stdin.read()
    restore_client_state(client, state)
    _save_client(args.home, client)
    print("imported client state")
    return 0


def _tenants_directory(args: argparse.Namespace):
    """The TenantDirectory behind ``serve --tenants``, or None."""
    path = getattr(args, "tenants", None)
    if not path:
        return None
    from repro.tenancy import TenantDirectory

    return TenantDirectory.load(path)


def _serve_sharded(args: argparse.Namespace, metrics: Metrics, tracer):
    """Build the N-shard service for ``serve --shards N``."""
    scheme, options = _store_options(args.home)
    data_dir = _data_dir(args)
    single_log = os.path.join(data_dir, "server.log")
    if os.path.exists(single_log):
        from repro.storage.kvstore import LogKvStore

        # There is no repartitioning path: a log written by a single
        # server holds every tag, and splitting it would need the tag
        # ring the data was NOT written under.  A header-only log (what
        # `init` leaves behind) holds nothing and is safe to shard.
        if len(LogKvStore(single_log)):
            raise ReproError(
                f"{single_log} holds single-server state; --shards "
                "requires a fresh data dir (or keep serving it with "
                "--shards 1)")
    service = make_service(scheme, shards=args.shards, data_dir=data_dir,
                           host=args.host, port=args.port,
                           workers=args.workers, metrics=metrics,
                           tracer=tracer, trace_shards=tracer is not None,
                           tenants=_tenants_directory(args), **options)
    return service, scheme


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the encrypted store over TCP until interrupted."""
    import signal
    import threading

    from repro.net.tcp import TcpSseServer
    from repro.obs.opcount import OpCounter, install_recorder
    from repro.obs.profile import (SamplingProfiler, format_span_table,
                                   install_profiler)
    from repro.obs.trace import Tracer

    if args.shards < 1:
        print("error: --shards must be at least 1", file=sys.stderr)
        return 1
    metrics = Metrics()
    tracer = Tracer() if args.trace_jsonl else None
    ops = previous_recorder = None
    if args.count_ops:
        ops = OpCounter()
        previous_recorder = install_recorder(ops)
    profiler = previous_profiler = None
    if args.profile:
        # Installed process-globally so PROFILE_REQUEST admin messages
        # are answered live; the collapsed-stack file lands on shutdown.
        profiler = SamplingProfiler(hz=args.profile_hz)
        previous_profiler = install_profiler(profiler)
        profiler.start()
    if args.shards > 1:
        tcp, scheme = _serve_sharded(args, metrics, tracer)
        print(f"serving {args.home} ({scheme}) on {tcp.host}:{tcp.port} "
              f"({args.shards} shards; ctrl-C to stop)")
    else:
        directory = _tenants_directory(args)
        if directory is not None:
            # Tenant-aware: one gateway of per-tenant backends over one
            # shared log; no client is needed to serve.
            scheme, options = _store_options(args.home)
            server = make_server(scheme, data_dir=_data_dir(args),
                                 tenants=directory, **options)
        else:
            _, server, scheme = _open(args.home, _data_dir(args))
        tcp = TcpSseServer(server, host=args.host, port=args.port,
                           max_workers=args.workers, metrics=metrics,
                           tracer=tracer)
        tcp.start()
        suffix = f"; {len(directory.ids())} tenants" \
            if directory is not None else ""
        print(f"serving {args.home} ({scheme}) on {tcp.host}:{tcp.port} "
              f"({tcp._pool.size} workers{suffix}; ctrl-C to stop)")

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_sigterm = None
    if threading.current_thread() is threading.main_thread():
        previous_sigterm = signal.signal(signal.SIGTERM, _terminate)
    # An injectable stop event (args.stop_event) lets tests and embedders
    # end the serve loop without signals; interactive runs still stop via
    # KeyboardInterrupt/SIGTERM, which interrupt the wait on main thread.
    stop = getattr(args, "stop_event", None)
    if stop is None:
        stop = threading.Event()
    interval = args.metrics_interval
    next_dump = time.monotonic() + interval if interval else None
    try:
        while not stop.wait(_SERVE_POLL_S):
            if next_dump is not None and time.monotonic() >= next_dump:
                next_dump = time.monotonic() + interval
                snapshot = metrics.render_text()
                print(snapshot if snapshot else "(no requests served)")
                sys.stdout.flush()
    except KeyboardInterrupt:
        print("\ndraining...", file=sys.stderr)
    finally:
        # Everything that must survive a shutdown happens HERE, not after
        # the try block: the SIGTERM handler above turns a `kill` into
        # KeyboardInterrupt precisely so this path runs.  stop() drains
        # in-flight requests, then close()s the durable handler — journal
        # flushed, log compacted if worth it — and only then do we emit
        # the final metrics / op / trace snapshots.
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
        tcp.stop(timeout=args.drain_timeout)
        if previous_recorder is not None:
            install_recorder(previous_recorder)
        if profiler is not None:
            profiler.stop()
            install_profiler(previous_profiler)
            if args.profile_out:
                collapsed = profiler.collapsed()
                with open(args.profile_out, "w") as fh:
                    if collapsed:
                        fh.write(collapsed + "\n")
                print(f"wrote collapsed-stack profile to "
                      f"{args.profile_out}", file=sys.stderr)
            print(format_span_table(
                {"span_self": profiler.span_self_times()}))
        if args.metrics or interval:
            snapshot = metrics.render_text()
            print(snapshot if snapshot else "(no requests served)")
        if ops is not None:
            counts = ops.snapshot()
            print("crypto ops: " + (json.dumps(counts, sort_keys=True)
                                    if counts else "(none recorded)"))
        if tracer is not None:
            n = tracer.export_jsonl(args.trace_jsonl)
            print(f"wrote {n} trace(s) to {args.trace_jsonl}",
                  file=sys.stderr)
    return 0


def _tenant_quota_from_args(args: argparse.Namespace):
    from repro.tenancy import TenantQuota

    return TenantQuota(max_documents=args.max_documents,
                       max_qps=args.max_qps, burst=args.burst)


def cmd_tenant_add(args: argparse.Namespace) -> int:
    """Register a tenant in the config file; print its session token."""
    from repro.tenancy import TenantDirectory

    if os.path.exists(args.config):
        directory = TenantDirectory.load(args.config)
    else:
        directory = TenantDirectory()
    tenant = directory.add(args.id, _tenant_quota_from_args(args))
    directory.save(args.config)
    print(f"added tenant {args.id!r} to {args.config}")
    # The token is derived, not stored: re-print it any time with
    # another `tenant add` of the same id (idempotent re-registration).
    print(f"auth token: {tenant.token.hex()}")
    return 0


def cmd_tenant_list(args: argparse.Namespace) -> int:
    """List registered tenants and their quotas."""
    from repro.tenancy import TenantDirectory

    directory = TenantDirectory.load(args.config)
    print(f"operator fingerprint: {directory.fingerprint}")
    for tenant_id in directory.ids():
        quota = directory.quota(tenant_id)
        docs = quota.max_documents if quota.max_documents is not None \
            else "unlimited"
        qps = quota.max_qps if quota.max_qps is not None else "unlimited"
        print(f"{tenant_id:<24} max_documents={docs} max_qps={qps}")
    return 0


def cmd_tenant_quota(args: argparse.Namespace) -> int:
    """Replace a registered tenant's quota."""
    from repro.tenancy import TenantDirectory

    directory = TenantDirectory.load(args.config)
    directory.set_quota(args.id, _tenant_quota_from_args(args))
    directory.save(args.config)
    print(f"updated quota for tenant {args.id!r}")
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    _, server, _ = _open(args.home, _data_dir(args))
    log_path = os.path.join(_data_dir(args), "server.log")
    before = os.path.getsize(log_path)
    server.compact()
    after = os.path.getsize(log_path)
    print(f"compacted server log: {before} -> {after} bytes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Searchable-encrypted document store (any scheme)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="create a new encrypted store")
    p_init.add_argument("--scheme", default="scheme2",
                        choices=available_schemes(),
                        help="SSE scheme to deploy (default: scheme2)")
    p_init.set_defaults(fn=cmd_init)

    p_store = sub.add_parser("store", help="store one document")
    p_store.add_argument("--id", type=int, required=True)
    p_store.add_argument("--keywords", required=True,
                         help="comma-separated keyword list")
    p_store.add_argument("--text", help="document body (default: stdin)")
    p_store.set_defaults(fn=cmd_store)

    p_load = sub.add_parser(
        "load", help="bulk-import JSONL documents in batched chunks")
    p_load.add_argument("--input", default=None,
                        help="JSONL file of documents (default: stdin)")
    p_load.add_argument("--batch-size", type=int, default=64,
                        help="documents per batch frame (default: 64)")
    p_load.set_defaults(fn=cmd_load)

    p_search = sub.add_parser("search", help="search by keyword")
    p_search.add_argument("--keyword", required=True)
    p_search.set_defaults(fn=cmd_search)

    p_remove = sub.add_parser("remove", help="remove one document")
    p_remove.add_argument("--id", type=int, required=True)
    p_remove.add_argument("--keywords", required=True,
                          help="the document's full keyword list")
    p_remove.set_defaults(fn=cmd_remove)

    p_stats = sub.add_parser("stats", help="store statistics")
    p_stats.add_argument("--live", action="store_true",
                         help="query a running `serve` instance over TCP")
    p_stats.add_argument("--host", default="127.0.0.1",
                         help="serve host for --live (default: 127.0.0.1)")
    p_stats.add_argument("--port", type=int, default=None,
                         help="serve port for --live")
    p_stats.set_defaults(fn=cmd_stats)

    p_compact = sub.add_parser("compact", help="compact the server log")
    p_compact.set_defaults(fn=cmd_compact)

    p_schemes = sub.add_parser("schemes",
                               help="list registered SSE schemes")
    p_schemes.set_defaults(fn=cmd_schemes)

    p_export = sub.add_parser(
        "export-state",
        help="export the client's non-key state as JSON")
    p_export.add_argument("--output", help="write to file (default: stdout)")
    p_export.set_defaults(fn=cmd_export_state)

    p_import = sub.add_parser(
        "import-state",
        help="import client state exported by `export-state`")
    p_import.add_argument("--input", help="read from file (default: stdin)")
    p_import.set_defaults(fn=cmd_import_state)

    p_serve = sub.add_parser("serve",
                             help="serve the store over TCP (ctrl-C stops)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default: ephemeral)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker pool size (default: min(8, cpu))")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="partition the tag space across N shard "
                              "processes (default: 1, single server)")
    p_serve.add_argument("--drain-timeout", type=float, default=5.0,
                         help="seconds to wait for in-flight requests")
    p_serve.add_argument("--metrics", action="store_true",
                         help="print a metrics snapshot on shutdown")
    p_serve.add_argument("--metrics-interval", type=float, default=0.0,
                         help="also print the snapshot every N seconds")
    p_serve.add_argument("--trace-jsonl", default=None,
                         help="trace requests; write JSONL here on shutdown")
    p_serve.add_argument("--profile", action="store_true",
                         help="run the span-attributed sampling profiler "
                              "(PROFILE admin messages answer live; "
                              "summary printed on shutdown)")
    p_serve.add_argument("--profile-hz", type=float, default=97.0,
                         help="profiler sample rate (default 97)")
    p_serve.add_argument("--profile-out", default=None,
                         help="write the collapsed-stack (flamegraph) "
                              "profile to this file on shutdown")
    p_serve.add_argument("--count-ops", action="store_true",
                         help="count crypto ops; print totals on shutdown")
    p_serve.add_argument("--tenants", default=None,
                         help="tenants config JSON (see `tenant add`); "
                              "serves every tenant behind SESSION_OPEN "
                              "auth with per-tenant quotas")
    p_serve.set_defaults(fn=cmd_serve)

    p_tenant = sub.add_parser(
        "tenant", help="manage a multi-tenant config file")
    tenant_sub = p_tenant.add_subparsers(dest="tenant_command",
                                         required=True)
    t_add = tenant_sub.add_parser(
        "add", help="register a tenant; prints its session token")
    t_add.add_argument("id", help="tenant id ([A-Za-z0-9._-], max 64)")
    t_add.set_defaults(fn=cmd_tenant_add)
    t_list = tenant_sub.add_parser("list", help="list registered tenants")
    t_list.set_defaults(fn=cmd_tenant_list)
    t_quota = tenant_sub.add_parser(
        "quota", help="replace a registered tenant's quota")
    t_quota.add_argument("id")
    t_quota.set_defaults(fn=cmd_tenant_quota)
    for t in (t_add, t_quota):
        t.add_argument("--max-documents", type=int, default=None,
                       help="cap on live documents (default: unlimited)")
        t.add_argument("--max-qps", type=float, default=None,
                       help="sustained request rate (default: unlimited)")
        t.add_argument("--burst", type=float, default=None,
                       help="token-bucket depth (default: max(1, qps))")
    for t in (t_add, t_list, t_quota):
        t.add_argument("--config", required=True,
                       help="tenants config JSON file (created by `add`)")

    for p in (p_store, p_load, p_search, p_remove, p_stats, p_compact,
              p_init, p_serve, p_export, p_import):
        p.add_argument("--home", default=os.path.expanduser("~/.repro-sse"),
                       help="store directory (default: ~/.repro-sse)")
        p.add_argument("--data-dir", default=None,
                       help="server log directory (default: --home)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
