"""Command-line PHR⁺ client — searchable encrypted storage in a directory.

A minimal but complete deployment of Scheme 2 with durable state::

    python -m repro.cli init      --home ~/.phr
    python -m repro.cli store     --home ~/.phr --id 0 --keywords flu,fever \
                                  --text "visit note"
    python -m repro.cli search    --home ~/.phr --keyword flu
    python -m repro.cli remove    --home ~/.phr --id 0 --keywords flu,fever
    python -m repro.cli stats     --home ~/.phr

Layout of ``--home``:

* ``server.log`` — the honest-but-curious server's entire persisted state
  (checksummed append-only log: encrypted bodies + index segments);
* ``client.json`` — the client's counter/epoch state (no key material);
* ``master.key``  — the master key, hex.  In a real deployment this file
  would live in a vault/smartcard; the CLI keeps it beside the state for
  demonstration and sets mode 0600.

Everything in ``server.log`` is exactly what an adversarial server would
see — inspect it with ``stats`` or a hex dumper to convince yourself no
keyword survives in the clear.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.documents import Document
from repro.core.keys import MasterKey, keygen
from repro.core.persistence import (PersistentScheme2Server,
                                    export_client_state,
                                    restore_client_state)
from repro.core.registry import (available_schemes, make_scheme,
                                 scheme_description)
from repro.core.scheme2 import Scheme2Client
from repro.errors import ReproError
from repro.net.channel import Channel
from repro.obs.metrics import Metrics

__all__ = ["build_parser", "cmd_compact", "cmd_init", "cmd_remove",
           "cmd_schemes", "cmd_search", "cmd_serve", "cmd_stats",
           "cmd_store", "main"]

_CHAIN_LENGTH = 4096


def _paths(home: str) -> dict[str, str]:
    return {
        "server": os.path.join(home, "server.log"),
        "client": os.path.join(home, "client.json"),
        "key": os.path.join(home, "master.key"),
    }


def _load_master_key(path: str) -> MasterKey:
    with open(path) as fh:
        payload = json.load(fh)
    return MasterKey(k_m=bytes.fromhex(payload["k_m"]),
                     k_w=bytes.fromhex(payload["k_w"]))


def _open(home: str, metrics: Metrics | None = None
          ) -> tuple[Scheme2Client, PersistentScheme2Server]:
    paths = _paths(home)
    if not os.path.exists(paths["key"]):
        raise ReproError(f"{home} is not initialized (run `init` first)")
    master_key = _load_master_key(paths["key"])
    server = PersistentScheme2Server(paths["server"],
                                     max_walk=_CHAIN_LENGTH)
    # The client is built through the scheme registry: swapping the CLI to
    # another registered scheme is a name change plus a persistence story.
    client, _ = make_scheme("scheme2", master_key,
                            channel=Channel(server, metrics=metrics),
                            chain_length=_CHAIN_LENGTH)
    if os.path.exists(paths["client"]):
        with open(paths["client"]) as fh:
            restore_client_state(client, fh.read())
    return client, server


def _save_client(home: str, client: Scheme2Client) -> None:
    with open(_paths(home)["client"], "w") as fh:
        fh.write(export_client_state(client))


def cmd_init(args: argparse.Namespace) -> int:
    paths = _paths(args.home)
    os.makedirs(args.home, exist_ok=True)
    if os.path.exists(paths["key"]):
        print(f"{args.home} already initialized", file=sys.stderr)
        return 1
    master_key = keygen()
    fd = os.open(paths["key"], os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600)
    with os.fdopen(fd, "w") as fh:
        json.dump({"k_m": master_key.k_m.hex(),
                   "k_w": master_key.k_w.hex()}, fh)
    client, _ = _open(args.home)
    _save_client(args.home, client)
    print(f"initialized encrypted store in {args.home}")
    return 0


def _parse_keywords(raw: str) -> frozenset[str]:
    return frozenset(part for part in raw.split(",") if part.strip())


def cmd_store(args: argparse.Namespace) -> int:
    client, _ = _open(args.home)
    text = args.text if args.text is not None else sys.stdin.read()
    document = Document(args.id, text.encode("utf-8"),
                        _parse_keywords(args.keywords))
    client.add_documents([document])
    _save_client(args.home, client)
    print(f"stored document {args.id} "
          f"({len(document.keywords)} keywords, counter "
          f"{client.ctr}/{client.chain_length})")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    client, server = _open(args.home)
    result = client.search(args.keyword)
    _save_client(args.home, client)  # searches move the Opt-2 flag
    print(f"{len(result.doc_ids)} match(es) for {args.keyword!r} "
          f"(chain walk: {server.chain_steps_last_search} steps)")
    for doc_id, body in zip(result.doc_ids, result.documents):
        print(f"--- doc {doc_id} ---")
        print(body.decode("utf-8", errors="replace"))
    return 0


def cmd_remove(args: argparse.Namespace) -> int:
    client, _ = _open(args.home)
    document = Document(args.id, b"", _parse_keywords(args.keywords))
    client.remove_documents([document])
    _save_client(args.home, client)
    print(f"removed document {args.id}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    client, server = _open(args.home)
    paths = _paths(args.home)
    print(f"documents stored:   {len(server.documents)}")
    print(f"unique keywords:    {server.unique_keywords} (as opaque tags)")
    print(f"update counter:     {client.ctr}/{client.chain_length} "
          f"(epoch {client.epoch})")
    print(f"server log size:    {os.path.getsize(paths['server'])} bytes")
    print(f"dead log records:   {server._kv.dead_records} "
          f"(run `compact` to reclaim)")
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    for name in available_schemes():
        print(f"{name:<10} {scheme_description(name)}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve the encrypted store over TCP until interrupted."""
    from repro.net.tcp import TcpSseServer

    _, server = _open(args.home)
    metrics = Metrics()
    tcp = TcpSseServer(server, host=args.host, port=args.port,
                       max_workers=args.workers, metrics=metrics)
    tcp.start()
    print(f"serving {args.home} on {tcp.host}:{tcp.port} "
          f"({tcp._pool.size} workers; ctrl-C to stop)")
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        print("\ndraining...", file=sys.stderr)
    finally:
        tcp.stop(timeout=args.drain_timeout)
    if args.metrics:
        snapshot = metrics.render_text()
        print(snapshot if snapshot else "(no requests served)")
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    _, server = _open(args.home)
    before = os.path.getsize(_paths(args.home)["server"])
    server.compact()
    after = os.path.getsize(_paths(args.home)["server"])
    print(f"compacted server log: {before} -> {after} bytes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Searchable-encrypted document store (Scheme 2)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_init = sub.add_parser("init", help="create a new encrypted store")
    p_init.set_defaults(fn=cmd_init)

    p_store = sub.add_parser("store", help="store one document")
    p_store.add_argument("--id", type=int, required=True)
    p_store.add_argument("--keywords", required=True,
                         help="comma-separated keyword list")
    p_store.add_argument("--text", help="document body (default: stdin)")
    p_store.set_defaults(fn=cmd_store)

    p_search = sub.add_parser("search", help="search by keyword")
    p_search.add_argument("--keyword", required=True)
    p_search.set_defaults(fn=cmd_search)

    p_remove = sub.add_parser("remove", help="remove one document")
    p_remove.add_argument("--id", type=int, required=True)
    p_remove.add_argument("--keywords", required=True,
                          help="the document's full keyword list")
    p_remove.set_defaults(fn=cmd_remove)

    p_stats = sub.add_parser("stats", help="store statistics")
    p_stats.set_defaults(fn=cmd_stats)

    p_compact = sub.add_parser("compact", help="compact the server log")
    p_compact.set_defaults(fn=cmd_compact)

    p_schemes = sub.add_parser("schemes",
                               help="list registered SSE schemes")
    p_schemes.set_defaults(fn=cmd_schemes)

    p_serve = sub.add_parser("serve",
                             help="serve the store over TCP (ctrl-C stops)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default: ephemeral)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker pool size (default: min(8, cpu))")
    p_serve.add_argument("--drain-timeout", type=float, default=5.0,
                         help="seconds to wait for in-flight requests")
    p_serve.add_argument("--metrics", action="store_true",
                         help="print a metrics snapshot on shutdown")
    p_serve.set_defaults(fn=cmd_serve)

    for p in (p_store, p_search, p_remove, p_stats, p_compact, p_init,
              p_serve):
        p.add_argument("--home", default=os.path.expanduser("~/.repro-sse"),
                       help="store directory (default: ~/.repro-sse)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
