"""repro — a reproduction of "Adaptively Secure Computationally Efficient
Searchable Symmetric Encryption" (Sedghi, van Liesdonk, Doumen, Hartel,
Jonker; 2010).

The package implements the paper's two SSE schemes, the security framework
they are proven in, the baselines they improve on, and the PHR⁺ application
that motivates them — on top of a from-scratch crypto substrate (AES,
SHA-256/HMAC, ElGamal, hash chains).

Quick start::

    from repro import Document, keygen, make_scheme2

    client, server, channel = make_scheme2(keygen())
    client.store([Document(0, b"visit note", frozenset({"sym:fever"}))])
    result = client.search("sym:fever")
    assert result.doc_ids == [0]

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
paper's tables and figures.
"""

from repro.core import (Document, MasterKey, Scheme1Client, Scheme1Server,
                        Scheme2Client, Scheme2Server, SchemeHandle,
                        SearchResult, available_schemes, keygen, make_client,
                        make_scheme, make_scheme1, make_scheme2, make_server,
                        make_service)
from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = [
    "Document",
    "MasterKey",
    "ReproError",
    "Scheme1Client",
    "Scheme1Server",
    "Scheme2Client",
    "Scheme2Server",
    "SchemeHandle",
    "SearchResult",
    "__version__",
    "available_schemes",
    "keygen",
    "make_client",
    "make_scheme",
    "make_scheme1",
    "make_scheme2",
    "make_server",
    "make_service",
]
