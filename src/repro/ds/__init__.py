"""Data-structure substrate: AVL tree, bitsets, Bloom filters, posting lists."""

from repro.ds.avl import AvlTree
from repro.ds.bitset import BitsetIndex
from repro.ds.bloom import BloomFilter, optimal_parameters
from repro.ds.posting import (decode_posting_list, encode_posting_list,
                              merge_posting_lists)

__all__ = [
    "AvlTree",
    "BitsetIndex",
    "BloomFilter",
    "decode_posting_list",
    "encode_posting_list",
    "merge_posting_lists",
    "optimal_parameters",
]
