"""Posting lists: sorted document-id lists with compact serialization.

Scheme 2 stores each update's id-list as an encrypted blob; the plaintext
inside the blob is a posting list serialized here.  Varint delta encoding
keeps update messages small, which is the whole point of Scheme 2 (§5.4:
"diminishing the communication cost").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ParameterError

__all__ = ["encode_posting_list", "decode_posting_list", "merge_posting_lists"]


def _encode_varint(value: int) -> bytes:
    """LEB128-style unsigned varint."""
    if value < 0:
        raise ParameterError("varints encode non-negative integers")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one varint at *offset*; return (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ParameterError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise ParameterError("varint too long")


def encode_posting_list(doc_ids: Iterable[int]) -> bytes:
    """Serialize document ids as delta-encoded varints.

    Input order does not matter; duplicates are removed.  The first varint
    is the element count, then first id, then successive gaps.
    """
    ids = sorted(set(doc_ids))
    if ids and ids[0] < 0:
        raise ParameterError("document ids must be non-negative")
    out = bytearray(_encode_varint(len(ids)))
    previous = 0
    for index, doc_id in enumerate(ids):
        gap = doc_id if index == 0 else doc_id - previous
        out += _encode_varint(gap)
        previous = doc_id
    return bytes(out)


def decode_posting_list(data: bytes) -> list[int]:
    """Invert :func:`encode_posting_list`; returns ascending ids."""
    count, offset = _decode_varint(data, 0)
    ids: list[int] = []
    current = 0
    for index in range(count):
        gap, offset = _decode_varint(data, offset)
        current = gap if index == 0 else current + gap
        ids.append(current)
    if offset != len(data):
        raise ParameterError("trailing bytes after posting list")
    return ids


def merge_posting_lists(lists: Sequence[Sequence[int]]) -> list[int]:
    """Union several ascending posting lists into one ascending list."""
    merged: set[int] = set()
    for lst in lists:
        merged.update(lst)
    return sorted(merged)
