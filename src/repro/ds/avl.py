"""AVL tree — the ordered-map "tree structure" of the paper (§5.1).

The paper's O(log u) search claim rests on storing the searchable
representations in a balanced tree keyed by keyword tags.  This is that
tree, written from scratch so that the claim is measurable: lookups report
their comparison count, and the server benchmarks fit measured costs to a
log curve.

The interface is a subset of a mutable mapping: ``insert`` / ``get`` /
``delete`` / ``__contains__`` / ``__len__`` / in-order ``items()``.
Property tests compare it exhaustively against a ``dict`` model.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import ParameterError

__all__ = ["AvlTree"]


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.height = 1


def _height(node: Optional[_Node]) -> int:
    return node.height if node is not None else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AvlTree:
    """Self-balancing binary search tree over totally ordered keys.

    >>> tree = AvlTree()
    >>> tree.insert(b"b", 2); tree.insert(b"a", 1)
    >>> tree.get(b"a")
    1
    >>> [k for k, _ in tree.items()]
    [b'a', b'b']
    """

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._size = 0
        self.last_comparisons = 0  # instrumentation for the log(u) benches

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    @property
    def height(self) -> int:
        """Current tree height (0 for the empty tree)."""
        return _height(self._root)

    def insert(self, key: Any, value: Any) -> None:
        """Insert or replace the value stored under *key*."""
        if key is None:
            raise ParameterError("AVL keys must not be None")
        self._root, added = self._insert(self._root, key, value)
        if added:
            self._size += 1

    def _insert(self, node: Optional[_Node], key: Any,
                value: Any) -> tuple[_Node, bool]:
        if node is None:
            return _Node(key, value), True
        if key == node.key:
            node.value = value
            return node, False
        if key < node.key:
            node.left, added = self._insert(node.left, key, value)
        else:
            node.right, added = self._insert(node.right, key, value)
        return _rebalance(node), added

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value for *key*, or *default* if absent.

        Updates :attr:`last_comparisons` with the number of key comparisons
        performed, which the benchmarks use to demonstrate O(log u) search.
        """
        node = self._find(key)
        return node.value if node is not None else default

    def _find(self, key: Any) -> Optional[_Node]:
        comparisons = 0
        node = self._root
        while node is not None:
            comparisons += 1
            if key == node.key:
                break
            node = node.left if key < node.key else node.right
        self.last_comparisons = comparisons
        return node

    def delete(self, key: Any) -> bool:
        """Remove *key*; return True if it was present."""
        self._root, removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
        return removed

    def _delete(self, node: Optional[_Node],
                key: Any) -> tuple[Optional[_Node], bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._delete(node.left, key)
        elif key > node.key:
            node.right, removed = self._delete(node.right, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            successor = node.right
            while successor.left is not None:
                successor = successor.left
            node.key, node.value = successor.key, successor.value
            node.right, _ = self._delete(node.right, successor.key)
        return _rebalance(node), removed

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) pairs in ascending key order (iteratively)."""
        stack: list[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> Iterator[Any]:
        """Yield keys in ascending order."""
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        """Yield values in ascending key order."""
        for _, value in self.items():
            yield value

    def check_invariants(self) -> None:
        """Assert BST ordering and AVL balance everywhere (test helper)."""
        def recurse(node: Optional[_Node]) -> tuple[int, Any, Any]:
            if node is None:
                return 0, None, None
            lh, lmin, lmax = recurse(node.left)
            rh, rmin, rmax = recurse(node.right)
            if lmax is not None and not lmax < node.key:
                raise AssertionError("BST order violated on the left")
            if rmin is not None and not node.key < rmin:
                raise AssertionError("BST order violated on the right")
            if abs(lh - rh) > 1:
                raise AssertionError("AVL balance violated")
            height = 1 + max(lh, rh)
            if height != node.height:
                raise AssertionError("stale cached height")
            return (height,
                    lmin if lmin is not None else node.key,
                    rmax if rmax is not None else node.key)

        recurse(self._root)
