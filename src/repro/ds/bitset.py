"""Fixed-capacity bit-array document-id sets — Scheme 1's I(w) and U(w).

Scheme 1 (§5.2) represents "the set of identifiers of documents containing
w" as an array of bits where bit *i* is set iff document *i* is in the set.
Updates are communicated as XOR patches: ``I'(w) = I(w) ⊕ U(w)``, which
both adds and removes identifiers without revealing which.

:class:`BitsetIndex` is that array, with the XOR algebra, serialization to
the exact byte width the protocol sends, and set-like conveniences.  The
capacity is fixed at construction because every mask G(r) must match the
array length bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.crypto.bytesutil import xor_bytes
from repro.errors import CapacityError, ParameterError

__all__ = ["BitsetIndex"]


class BitsetIndex:
    """A set of document ids in ``[0, capacity)`` backed by a bit array.

    >>> s = BitsetIndex(16, [1, 5])
    >>> sorted(s)
    [1, 5]
    >>> sorted(s ^ BitsetIndex(16, [5, 9]))
    [1, 9]
    """

    def __init__(self, capacity: int, ids: Iterable[int] = ()) -> None:
        if capacity <= 0:
            raise ParameterError("bitset capacity must be positive")
        self._capacity = capacity
        self._bits = bytearray((capacity + 7) // 8)
        for doc_id in ids:
            self.add(doc_id)

    @property
    def capacity(self) -> int:
        """Maximum number of distinct document ids representable."""
        return self._capacity

    @property
    def byte_length(self) -> int:
        """Length in bytes of the serialized form (== mask length)."""
        return len(self._bits)

    def _check(self, doc_id: int) -> None:
        if not isinstance(doc_id, int):
            raise ParameterError("document ids are integers")
        if not 0 <= doc_id < self._capacity:
            raise CapacityError(
                f"document id {doc_id} outside capacity {self._capacity}"
            )

    def add(self, doc_id: int) -> None:
        """Insert *doc_id* (idempotent)."""
        self._check(doc_id)
        self._bits[doc_id // 8] |= 1 << (doc_id % 8)

    def discard(self, doc_id: int) -> None:
        """Remove *doc_id* if present."""
        self._check(doc_id)
        self._bits[doc_id // 8] &= ~(1 << (doc_id % 8)) & 0xFF

    def toggle(self, doc_id: int) -> None:
        """Flip membership of *doc_id* (one bit of an XOR patch)."""
        self._check(doc_id)
        self._bits[doc_id // 8] ^= 1 << (doc_id % 8)

    def __contains__(self, doc_id: int) -> bool:
        if not 0 <= doc_id < self._capacity:
            return False
        return bool(self._bits[doc_id // 8] & (1 << (doc_id % 8)))

    def __iter__(self) -> Iterator[int]:
        for byte_index, byte in enumerate(self._bits):
            if not byte:
                continue
            base = byte_index * 8
            for bit in range(8):
                if byte & (1 << bit):
                    doc_id = base + bit
                    if doc_id < self._capacity:
                        yield doc_id

    def __len__(self) -> int:
        return sum(bin(byte).count("1") for byte in self._bits) - self._overflow_bits()

    def _overflow_bits(self) -> int:
        # Bits in the final byte above capacity are always zero by
        # construction; count defensively anyway.
        extra = len(self._bits) * 8 - self._capacity
        if extra == 0:
            return 0
        last = self._bits[-1] >> (8 - extra)
        return bin(last).count("1")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitsetIndex):
            return NotImplemented
        return (self._capacity == other._capacity
                and self._bits == other._bits)

    def __hash__(self) -> int:  # pragma: no cover - sets of bitsets unused
        return hash((self._capacity, bytes(self._bits)))

    def __xor__(self, other: "BitsetIndex") -> "BitsetIndex":
        """Symmetric difference — the paper's I(w) ⊕ U(w) update algebra."""
        if not isinstance(other, BitsetIndex):
            return NotImplemented
        if self._capacity != other._capacity:
            raise ParameterError("cannot XOR bitsets of different capacity")
        result = BitsetIndex(self._capacity)
        result._bits = bytearray(xor_bytes(bytes(self._bits), bytes(other._bits)))
        return result

    def __or__(self, other: "BitsetIndex") -> "BitsetIndex":
        if self._capacity != other._capacity:
            raise ParameterError("cannot OR bitsets of different capacity")
        result = BitsetIndex(self._capacity)
        result._bits = bytearray(
            a | b for a, b in zip(self._bits, other._bits)
        )
        return result

    def to_bytes(self) -> bytes:
        """Serialize to the fixed protocol width."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes, capacity: int) -> "BitsetIndex":
        """Deserialize; validates the byte width against *capacity*."""
        expected = (capacity + 7) // 8
        if len(data) != expected:
            raise ParameterError(
                f"serialized bitset of {len(data)} bytes does not match "
                f"capacity {capacity} (expected {expected} bytes)"
            )
        result = cls(capacity)
        result._bits = bytearray(data)
        return result

    def copy(self) -> "BitsetIndex":
        """Return an independent copy."""
        clone = BitsetIndex(self._capacity)
        clone._bits = bytearray(self._bits)
        return clone

    def __repr__(self) -> str:
        ids = list(self)
        shown = ids[:8]
        suffix = ", ..." if len(ids) > 8 else ""
        return (f"BitsetIndex(capacity={self._capacity}, "
                f"ids=[{', '.join(map(str, shown))}{suffix}])")
