"""Bloom filter — the substrate of Goh's Z-IDX baseline [12].

A standard m-bit, k-hash Bloom filter.  Hash positions are derived with the
double-hashing technique (Kirsch–Mitzenmacher): two independent HMAC-based
hashes h1, h2 generate k positions ``h1 + i*h2 mod m``, which preserves the
asymptotic false-positive rate while needing only two PRF calls per item.
"""

from __future__ import annotations

import math

from repro.crypto.bytesutil import bytes_to_int
from repro.crypto.hmac_sha256 import hmac_sha256
from repro.errors import ParameterError

__all__ = ["BloomFilter", "optimal_parameters"]


def optimal_parameters(expected_items: int,
                       false_positive_rate: float) -> tuple[int, int]:
    """Return (bits, hashes) minimizing size for the target FP rate."""
    if expected_items <= 0:
        raise ParameterError("expected_items must be positive")
    if not 0 < false_positive_rate < 1:
        raise ParameterError("false_positive_rate must be in (0, 1)")
    bits = math.ceil(-expected_items * math.log(false_positive_rate)
                     / (math.log(2) ** 2))
    hashes = max(1, round(bits / expected_items * math.log(2)))
    return bits, hashes


class BloomFilter:
    """Fixed-size Bloom filter over byte-string items.

    >>> bf = BloomFilter(bits=1024, hashes=4)
    >>> bf.add(b"fever")
    >>> b"fever" in bf
    True
    """

    def __init__(self, bits: int, hashes: int) -> None:
        if bits <= 0:
            raise ParameterError("bit count must be positive")
        if hashes <= 0:
            raise ParameterError("hash count must be positive")
        self._m = bits
        self._k = hashes
        self._bits = bytearray((bits + 7) // 8)
        self._count = 0

    @property
    def bits(self) -> int:
        """Filter width in bits."""
        return self._m

    @property
    def hashes(self) -> int:
        """Number of hash functions."""
        return self._k

    @property
    def approximate_items(self) -> int:
        """Number of ``add`` calls made (duplicates counted)."""
        return self._count

    def _positions(self, item: bytes) -> list[int]:
        digest = hmac_sha256(b"repro.bloom.h1", item)
        h1 = bytes_to_int(digest[:16])
        h2 = bytes_to_int(digest[16:]) | 1  # odd => full-period stride
        return [(h1 + i * h2) % self._m for i in range(self._k)]

    def add(self, item: bytes) -> None:
        """Insert *item*."""
        for pos in self._positions(item):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self._count += 1

    def add_positions(self, positions: list[int]) -> None:
        """Insert by precomputed positions (Goh's trapdoor-based insert)."""
        for pos in positions:
            if not 0 <= pos < self._m:
                raise ParameterError("bloom position out of range")
            self._bits[pos // 8] |= 1 << (pos % 8)
        self._count += 1

    def __contains__(self, item: bytes) -> bool:
        return self.contains_positions(self._positions(item))

    def contains_positions(self, positions: list[int]) -> bool:
        """Membership test by precomputed positions."""
        return all(
            self._bits[pos // 8] & (1 << (pos % 8)) for pos in positions
        )

    def positions_for(self, item: bytes) -> list[int]:
        """Expose the position derivation (used by the Goh construction)."""
        return self._positions(item)

    def fill_ratio(self) -> float:
        """Fraction of set bits (useful for padding/blinding in Z-IDX)."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self._m

    def set_random_bits(self, n: int, rng) -> None:
        """Set *n* random bits — Goh's blinding step to mask keyword counts."""
        for _ in range(n):
            pos = rng.randint_below(self._m)
            self._bits[pos // 8] |= 1 << (pos % 8)

    def to_bytes(self) -> bytes:
        """Serialize the bit array."""
        return bytes(self._bits)
