"""Tenant directory and the tenant-scoped server gateway.

:class:`TenantDirectory` is the operator's view: which tenants exist,
their quotas, and (via the operator secret) their derived keys and
session tokens.  :class:`TenantGateway` is the server-side enforcement
point: it owns one backend scheme server per tenant, authenticates
``SESSION_OPEN`` handshakes, admits requests against per-tenant quotas,
and routes every message to the authenticated tenant's backend so no
request can ever touch another tenant's state.

Legacy clients that never perform the handshake keep working for one
release: :meth:`TenantGateway.handle` maps them to the *default tenant*
and emits a ``DeprecationWarning`` once per gateway.
"""

from __future__ import annotations

import json
import warnings

from repro.errors import (AuthError, ParameterError, ProtocolError,
                          QuotaExceededError)
from repro.net.messages import (ADMIN_MESSAGE_TYPES, Message, MessageType,
                                pack_batch, pack_batch_result, unpack_batch,
                                unpack_batch_result)
from repro.obs.metrics import NULL_METRICS
from repro.tenancy.derive import OperatorSecret, validate_tenant_id
from repro.tenancy.quota import TenantQuota

__all__ = ["Tenant", "TenantDirectory", "TenantGateway",
           "SessionConnection", "DEFAULT_TENANT", "TENANTS_CONFIG_FORMAT"]

#: The tenant implicit sessions map to during the deprecation window.
DEFAULT_TENANT = "default"

#: Format tag of the JSON tenants config (see ``repro tenant add``).
TENANTS_CONFIG_FORMAT = "repro.tenants/1"


class Tenant:
    """One tenant as seen through a directory: id, keys, token, quota."""

    __slots__ = ("tenant_id", "_directory")

    def __init__(self, tenant_id: str, directory: "TenantDirectory") -> None:
        self.tenant_id = tenant_id
        self._directory = directory

    @property
    def master_key(self):
        """The tenant's derived scheme master key."""
        return self._directory.master_key(self.tenant_id)

    @property
    def token(self) -> bytes:
        """The tenant's session auth token."""
        return self._directory.token(self.tenant_id)

    @property
    def quota(self) -> TenantQuota:
        """The tenant's admission quota."""
        return self._directory.quota(self.tenant_id)

    def __repr__(self) -> str:
        return f"Tenant({self.tenant_id!r})"


class TenantDirectory:
    """Registered tenants, their quotas, and the operator secret."""

    def __init__(self, operator: OperatorSecret | None = None) -> None:
        self._operator = operator if operator is not None \
            else OperatorSecret.generate()
        self._quotas: dict[str, TenantQuota] = {}

    @property
    def fingerprint(self) -> str:
        """The operator secret's non-secret fingerprint."""
        return self._operator.fingerprint

    def add(self, tenant_id: str, quota: TenantQuota | None = None
            ) -> Tenant:
        """Register (or re-register) a tenant; returns its binding."""
        tenant_id = validate_tenant_id(tenant_id)
        self._quotas[tenant_id] = quota if quota is not None else TenantQuota()
        return Tenant(tenant_id, self)

    def set_quota(self, tenant_id: str, quota: TenantQuota) -> None:
        """Replace a registered tenant's quota."""
        self._require(tenant_id)
        self._quotas[tenant_id] = quota

    def ids(self) -> tuple[str, ...]:
        """All registered tenant ids, sorted."""
        return tuple(sorted(self._quotas))

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._quotas

    def _require(self, tenant_id: str) -> str:
        if tenant_id not in self._quotas:
            raise ParameterError(f"unknown tenant: {tenant_id}")
        return tenant_id

    def tenant(self, tenant_id: str) -> Tenant:
        """Binding for a registered tenant (ParameterError if unknown)."""
        return Tenant(self._require(tenant_id), self)

    def quota(self, tenant_id: str) -> TenantQuota:
        """The tenant's quota (ParameterError if unknown)."""
        return self._quotas[self._require(tenant_id)]

    def master_key(self, tenant_id: str):
        """Derived master key of a registered tenant."""
        return self._operator.tenant_master_key(self._require(tenant_id))

    def token(self, tenant_id: str) -> bytes:
        """Session auth token of a registered tenant."""
        return self._operator.tenant_token(self._require(tenant_id))

    def authenticate(self, tenant_id: str, token: bytes) -> str:
        """Verify a handshake; returns the tenant id or raises AuthError.

        Unknown tenant and bad token collapse into one indistinguishable
        rejection so the handshake cannot be used to enumerate tenants.
        """
        try:
            validate_tenant_id(tenant_id)
        except ParameterError:
            raise AuthError("session authentication failed") from None
        if tenant_id not in self._quotas \
                or not self._operator.verify_token(tenant_id, token):
            raise AuthError("session authentication failed")
        return tenant_id

    def to_config(self) -> dict:
        """JSON-safe config: operator secret (hex) plus quotas."""
        return {
            "format": TENANTS_CONFIG_FORMAT,
            "operator_secret": self._operator.to_hex(),
            "tenants": {tid: quota.to_dict()
                        for tid, quota in sorted(self._quotas.items())},
        }

    @classmethod
    def from_config(cls, config: dict) -> "TenantDirectory":
        """Rebuild a directory from :meth:`to_config` output."""
        if config.get("format") != TENANTS_CONFIG_FORMAT:
            raise ParameterError(
                f"unsupported tenants config format: {config.get('format')!r}")
        directory = cls(OperatorSecret.from_hex(config["operator_secret"]))
        for tenant_id, quota in config.get("tenants", {}).items():
            directory.add(tenant_id, TenantQuota.from_dict(quota))
        return directory

    @classmethod
    def load(cls, path: str) -> "TenantDirectory":
        """Read a tenants config file from disk."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_config(json.load(fh))

    def save(self, path: str) -> None:
        """Write the tenants config file (overwrites)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_config(), fh, indent=2, sort_keys=True)
            fh.write("\n")


class SessionConnection:
    """Per-connection facade for in-process channels.

    Mirrors what a TCP session does: a ``SESSION_OPEN`` binds the
    connection to a tenant, and every later message is resolved against
    that tenant.  Unopened connections fall through to the target's
    legacy default-tenant shim.  Works over any handler exposing
    ``accept_session`` / ``handle`` / ``handle_as`` — the gateway here
    and :class:`~repro.net.shard.ShardRouter` both qualify.
    """

    def __init__(self, target) -> None:
        self._target = target
        self.tenant: str | None = None

    def handle(self, message: Message) -> Message:
        if message.type is MessageType.SESSION_OPEN:
            reply, tenant_id = self._target.accept_session(message)
            self.tenant = tenant_id
            return reply
        if self.tenant is None:
            return self._target.handle(message)
        return self._target.handle_as(self.tenant, message)

    def close(self) -> None:
        """Connections hold no resources; the target outlives them."""


class TenantGateway:
    """Routes every request to the authenticated tenant's backend.

    *build_backend* is called once per tenant id and must return a
    scheme server handler (typically durable, journaling under the
    tenant's ``t:<id>:`` prefix).  ``enforce_qps`` is switched off on
    shard workers, where the router already admitted the request once.
    """

    def __init__(self, directory: TenantDirectory, build_backend, *,
                 metrics=None, clock=None, default_tenant: str =
                 DEFAULT_TENANT, enforce_qps: bool = True) -> None:
        self.directory = directory
        self.default_tenant = validate_tenant_id(default_tenant)
        self.enforce_qps = enforce_qps
        self._build = build_backend
        self._clock = clock
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._backends: dict[str, object] = {}
        self._buckets: dict[str, object] = {}
        self._warned_default = False
        if self.default_tenant not in directory:
            directory.add(self.default_tenant)
        for tenant_id in directory.ids():
            self._ensure_backend(tenant_id)

    @property
    def metrics(self):
        """The gateway's metrics registry."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        # The TCP server propagates its registry into the handler the
        # same way DurableServer does; forward it to every backend that
        # accepts one so storage/handler metrics land in one registry.
        self._metrics = registry
        for backend in self._backends.values():
            if hasattr(backend, "metrics"):
                backend.metrics = registry

    def _ensure_backend(self, tenant_id: str):
        if tenant_id not in self._backends:
            self._backends[tenant_id] = self._build(tenant_id)
            self._buckets[tenant_id] = \
                self.directory.quota(tenant_id).bucket(self._clock)
        return self._backends[tenant_id]

    def backend(self, tenant_id: str):
        """The tenant's backend handler (ParameterError if unknown)."""
        self.directory.tenant(tenant_id)
        return self._ensure_backend(tenant_id)

    def tenants(self) -> tuple[str, ...]:
        """Tenant ids with instantiated backends."""
        return tuple(sorted(self._backends))

    # -- session handshake -------------------------------------------------

    def open_session(self, tenant_id: str, token: bytes) -> str:
        """Authenticate a handshake; returns the bound tenant id."""
        verified = self.directory.authenticate(tenant_id, token)
        self._ensure_backend(verified)
        return verified

    def accept_session(self, message: Message) -> tuple[Message, str]:
        """Process a ``SESSION_OPEN`` message into (reply, tenant id)."""
        fields = message.expect(MessageType.SESSION_OPEN, 2)
        try:
            tenant_id = fields[0].decode("utf-8")
        except UnicodeDecodeError:
            raise AuthError("session authentication failed") from None
        verified = self.open_session(tenant_id, fields[1])
        return (Message(MessageType.SESSION_ACCEPT, (fields[0],)), verified)

    # -- request handling --------------------------------------------------

    def handle(self, message: Message) -> Message:
        """Legacy entry point: implicit sessions map to the default tenant.

        This shim exists for one release; explicit ``SESSION_OPEN``
        handshakes (or :meth:`connect`) are the supported path.
        """
        if message.type is MessageType.SESSION_OPEN:
            return self.accept_session(message)[0]
        if message.type not in ADMIN_MESSAGE_TYPES \
                and not self._warned_default:
            self._warned_default = True
            warnings.warn(
                "implicit sessions against a tenant-aware server are "
                "deprecated and map to the default tenant; perform a "
                "SESSION_OPEN handshake (SseClient.open) instead",
                DeprecationWarning, stacklevel=2)
        return self.handle_as(self.default_tenant, message)

    def handle_as(self, tenant_id: str, message: Message) -> Message:
        """Handle *message* inside the authenticated tenant's namespace."""
        if tenant_id not in self._backends:
            raise AuthError("session authentication failed")
        backend = self._backends[tenant_id]
        if message.type in ADMIN_MESSAGE_TYPES:
            return backend.handle(message)
        if message.type is MessageType.BATCH_REQUEST:
            return self._handle_batch(tenant_id, backend, message)
        self._admit(tenant_id, backend, message, admitted_stores=[0])
        return backend.handle(message)

    def _handle_batch(self, tenant_id: str, backend,
                      message: Message) -> Message:
        """Admit each batch item; rejections answer in-position.

        Admitted items are re-packed into one sub-batch so the backend
        still sees a single envelope (one lock, one journal flush).
        """
        inner = unpack_batch(message)
        admitted_stores = [0]
        verdicts: list[str | None] = []
        for item in inner:
            try:
                self._admit(tenant_id, backend, item,
                            admitted_stores=admitted_stores)
                verdicts.append(None)
            except QuotaExceededError as exc:
                verdicts.append(type(exc).__name__)
        admitted = [item for item, v in zip(inner, verdicts) if v is None]
        if not admitted:
            replies: list[Message] = []
        else:
            sub = pack_batch(admitted, trace_id=message.trace_id)
            replies = list(unpack_batch_result(backend.handle(sub),
                                               expected_count=len(admitted)))
        out: list[Message] = []
        for verdict in verdicts:
            if verdict is None:
                out.append(replies.pop(0))
            else:
                out.append(Message(MessageType.ERROR,
                                   (verdict.encode("ascii"),)))
        return pack_batch_result(out, trace_id=message.trace_id)

    def _admit(self, tenant_id: str, backend, message: Message,
               *, admitted_stores: list[int]) -> None:
        """Charge quotas for one (inner) message; raise when over."""
        if message.type in ADMIN_MESSAGE_TYPES:
            return
        bucket = self._buckets.get(tenant_id)
        if self.enforce_qps and bucket is not None \
                and not bucket.try_take(1.0):
            self._count_rejection(tenant_id, "rate")
            raise QuotaExceededError(
                f"tenant {tenant_id} exceeded its request rate quota")
        if message.type is MessageType.STORE_DOCUMENT:
            quota = self.directory.quota(tenant_id)
            if quota.max_documents is not None:
                if len(message.fields) % 2:
                    raise ProtocolError(
                        "STORE_DOCUMENT fields must come in pairs")
                new_docs = len(message.fields) // 2
                live = len(backend.documents)
                if live + admitted_stores[0] + new_docs \
                        > quota.max_documents:
                    self._count_rejection(tenant_id, "documents")
                    raise QuotaExceededError(
                        f"tenant {tenant_id} exceeded its document quota "
                        f"({quota.max_documents})")
                admitted_stores[0] += new_docs

    def _count_rejection(self, tenant_id: str, reason: str) -> None:
        self._metrics.counter("quota_rejections_total", tenant=tenant_id,
                              reason=reason).inc()

    # -- embedding / lifecycle ---------------------------------------------

    def connect(self) -> SessionConnection:
        """A per-connection facade for in-process ``Channel`` use."""
        return SessionConnection(self)

    def stats(self) -> dict:
        """Per-tenant occupancy and quota snapshot."""
        tenants = {}
        for tenant_id, backend in sorted(self._backends.items()):
            docstore = getattr(backend, "documents", None)
            tenants[tenant_id] = {
                "documents": len(docstore) if docstore is not None else 0,
                "quota": self.directory.quota(tenant_id).to_dict(),
            }
        return {"tenants": tenants}

    def start(self) -> None:
        """Start every backend that distinguishes start from construction."""
        for backend in self._backends.values():
            if hasattr(backend, "start"):
                backend.start()

    def stop(self) -> None:
        """Stop every backend (flushes durable state)."""
        for backend in self._backends.values():
            if hasattr(backend, "stop"):
                backend.stop()

    def close(self) -> None:
        """Close every backend; the shared store closes with the last."""
        for backend in self._backends.values():
            if hasattr(backend, "close"):
                backend.close()
