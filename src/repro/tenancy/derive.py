"""Per-tenant key domains derived from one operator master secret.

A multi-tenant deployment holds exactly one long-term secret — the
*operator master secret* — and derives every tenant-facing key from it
with HKDF (RFC 5869) over the repo's from-scratch HMAC-SHA256.  Each
derivation is bound to the tenant id through the expand ``info`` label
``b"repro.tenant." + tenant_id``, so

* no tenant's :class:`~repro.core.keys.MasterKey` is computable from any
  other tenant's key material (HKDF expand outputs under distinct infos
  are independent PRF outputs), and
* the per-tenant *auth token* presented in the ``SESSION_OPEN``
  handshake is a plain HKDF output too — verifying it is one derivation
  plus a constant-time compare, with no token database to protect.

The raw secret (``OperatorSecret._ikm``) is consumed **only** inside
this module; the ``key-hygiene`` repro-lint rule enforces that every
other layer goes through :meth:`OperatorSecret.tenant_master_key` /
:meth:`OperatorSecret.tenant_token` instead of touching the input keying
material or the HKDF primitives directly.
"""

from __future__ import annotations

import re

from repro.core.keys import MasterKey
from repro.crypto.bytesutil import ct_equal
from repro.crypto.prg import hkdf_expand, hkdf_extract
from repro.crypto.rng import SystemRandomSource
from repro.errors import ParameterError

__all__ = ["OperatorSecret", "TENANT_LABEL",
           "validate_tenant_id", "tenant_state_prefix"]

#: Domain-separation label prefixed to every per-tenant derivation info.
TENANT_LABEL = b"repro.tenant."

#: Fixed extract salt; a constant is fine because the IKM is uniform.
_EXTRACT_SALT = b"repro.tenant.hkdf.salt"

#: Tenant ids are path/prefix-safe: no colon (it delimits the ``t:<id>:``
#: state prefix), no NUL, and short enough to embed in wire messages.
_TENANT_ID = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_MIN_SECRET_LEN = 16


def validate_tenant_id(tenant_id: str) -> str:
    """Return *tenant_id* if well-formed, else raise ParameterError."""
    if not isinstance(tenant_id, str) or not _TENANT_ID.match(tenant_id):
        raise ParameterError(
            "tenant id must be 1-64 characters of [A-Za-z0-9._-] "
            "starting with an alphanumeric")
    return tenant_id


def tenant_state_prefix(tenant_id: str) -> bytes:
    """The ``t:<id>:`` namespace prefix wrapped around a tenant's records.

    Applied by :class:`~repro.core.persistence.DurableServer` at the
    key-value boundary, *outside* the per-scheme prefixes (``s1:``,
    ``cgko.a:``, ...), so one shared journal/snapshot store never mixes
    tenants (see ``repro.core.state`` for the namespace table).
    """
    return b"t:" + validate_tenant_id(tenant_id).encode("ascii") + b":"


class OperatorSecret:
    """The single long-term secret of a multi-tenant operator.

    Everything tenant-scoped — master keys, auth tokens — is an HKDF
    derivation off this secret; the secret itself never leaves this
    class except through :meth:`to_hex` (for the tenants config file).
    """

    def __init__(self, material: bytes) -> None:
        if not isinstance(material, (bytes, bytearray)) \
                or len(material) < _MIN_SECRET_LEN:
            raise ParameterError(
                f"operator secret needs at least {_MIN_SECRET_LEN} bytes")
        self._ikm = bytes(material)
        self._prk = hkdf_extract(_EXTRACT_SALT, self._ikm)

    @classmethod
    def generate(cls, rng=None) -> "OperatorSecret":
        """Sample a fresh 32-byte secret (OS randomness by default)."""
        rng = rng if rng is not None else SystemRandomSource()
        return cls(rng.random_bytes(32))

    @classmethod
    def from_hex(cls, text: str) -> "OperatorSecret":
        """Rebuild from the hex form stored in a tenants config file."""
        try:
            return cls(bytes.fromhex(text))
        except ValueError as exc:
            raise ParameterError("operator secret is not valid hex") from exc

    def to_hex(self) -> str:
        """Hex form for persistence in a tenants config file."""
        return self._ikm.hex()

    @property
    def fingerprint(self) -> str:
        """A short non-secret identifier for logs and config sanity checks."""
        return hkdf_expand(self._prk, TENANT_LABEL + b"\x00fingerprint",
                           8).hex()

    def _expand(self, tenant_id: str, role: bytes, length: int) -> bytes:
        # info = "repro.tenant." + id + NUL + role; tenant ids cannot
        # contain NUL, so (id, role) pairs map to distinct infos.
        info = (TENANT_LABEL + validate_tenant_id(tenant_id).encode("ascii")
                + b"\x00" + role)
        return hkdf_expand(self._prk, info, length)

    def tenant_master_key(self, tenant_id: str) -> MasterKey:
        """The tenant's scheme master key K = (k_m, k_w)."""
        okm = self._expand(tenant_id, b"master", 64)
        return MasterKey(k_m=okm[:32], k_w=okm[32:])

    def tenant_token(self, tenant_id: str) -> bytes:
        """The tenant's 32-byte session auth token."""
        return self._expand(tenant_id, b"token", 32)

    def verify_token(self, tenant_id: str, token: bytes) -> bool:
        """Constant-time check of a presented session token."""
        if not isinstance(token, (bytes, bytearray)):
            return False
        return ct_equal(self.tenant_token(tenant_id), bytes(token))

    def __repr__(self) -> str:
        return f"OperatorSecret(fingerprint={self.fingerprint})"
