"""Multi-tenant key domains, session auth, and quotas.

See ``docs/multitenancy.md`` for the full design: HKDF key-domain
derivation off one operator secret, the ``SESSION_OPEN`` /
``SESSION_ACCEPT`` handshake, ``t:<id>:`` state-prefix isolation, and
token-bucket quota admission.
"""

from repro.tenancy.derive import (OperatorSecret, TENANT_LABEL,
                                  tenant_state_prefix, validate_tenant_id)
from repro.tenancy.gateway import (DEFAULT_TENANT, TENANTS_CONFIG_FORMAT,
                                   SessionConnection, Tenant,
                                   TenantDirectory, TenantGateway)
from repro.tenancy.quota import UNLIMITED, TenantQuota, TokenBucket

__all__ = [
    "OperatorSecret", "TENANT_LABEL",
    "tenant_state_prefix", "validate_tenant_id",
    "Tenant", "TenantDirectory", "TenantGateway", "SessionConnection",
    "DEFAULT_TENANT", "TENANTS_CONFIG_FORMAT",
    "TenantQuota", "TokenBucket", "UNLIMITED",
]
