"""Per-tenant admission quotas: document caps and token-bucket rates.

Quotas are *admission* control: a request over quota is rejected before
it reaches the scheme handler, surfaced as
:class:`~repro.errors.QuotaExceededError` — per item inside a batch, so
one over-quota store never poisons the admitted items around it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["TenantQuota", "TokenBucket", "UNLIMITED"]

#: Sentinel meaning "no limit" in config files (JSON null also works).
UNLIMITED = None


@dataclass(frozen=True)
class TenantQuota:
    """Limits for one tenant; ``None`` in any slot means unlimited.

    * ``max_documents`` — cap on live documents (checked at admission
      against the tenant's current count plus stores already admitted in
      the same batch).
    * ``max_qps`` — sustained request rate, enforced by a token bucket.
    * ``burst`` — bucket depth; defaults to ``max(1, max_qps)`` so a
      tenant can always issue at least one request after an idle period.
    """

    max_documents: int | None = None
    max_qps: float | None = None
    burst: float | None = None

    def __post_init__(self) -> None:
        if self.max_documents is not None and self.max_documents < 0:
            raise ParameterError("max_documents must be >= 0")
        if self.max_qps is not None and self.max_qps <= 0:
            raise ParameterError("max_qps must be positive")
        if self.burst is not None and self.burst <= 0:
            raise ParameterError("burst must be positive")

    def bucket(self, clock=None) -> "TokenBucket | None":
        """A fresh token bucket for this quota, or None if unlimited."""
        if self.max_qps is None:
            return None
        burst = self.burst if self.burst is not None \
            else max(1.0, float(self.max_qps))
        return TokenBucket(self.max_qps, burst, clock=clock)

    def to_dict(self) -> dict:
        """JSON-safe form for the tenants config file."""
        return {"max_documents": self.max_documents,
                "max_qps": self.max_qps, "burst": self.burst}

    @classmethod
    def from_dict(cls, data: dict) -> "TenantQuota":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        unknown = set(data) - {"max_documents", "max_qps", "burst"}
        if unknown:
            raise ParameterError(
                f"unknown quota keys: {', '.join(sorted(unknown))}")
        return cls(max_documents=data.get("max_documents"),
                   max_qps=data.get("max_qps"), burst=data.get("burst"))


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill up to ``burst``.

    The clock is injectable so tests (and the Hypothesis quota suite)
    can step time deterministically.
    """

    def __init__(self, rate: float, burst: float, clock=None) -> None:
        if rate <= 0 or burst <= 0:
            raise ParameterError("token bucket rate and burst must be > 0")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self._burst
        self._last = self._clock()
        self._lock = threading.Lock()

    @property
    def rate(self) -> float:
        """Sustained refill rate in tokens per second."""
        return self._rate

    @property
    def burst(self) -> float:
        """Bucket depth (maximum tokens held)."""
        return self._burst

    def tokens(self) -> float:
        """Current token level (after refill; mainly for tests/stats)."""
        with self._lock:
            self._refill()
            return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)

    def try_take(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; False (no debt) otherwise."""
        with self._lock:
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False
