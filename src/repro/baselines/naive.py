"""Naive baseline: download everything, decrypt, filter locally.

The trivial "perfect privacy, zero server help" point of the design space:
search leaks nothing (the server always ships the whole database) but costs
O(total database bytes) in bandwidth and O(n) client-side decryption per
query.  Every comparison bench uses it as the lower bound on leakage and
the upper bound on search cost.

Keywords ride inside the encrypted blob (length-prefixed alongside the
data) because the client keeps no local index.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.core.api import SearchResult, SseClient, SseServerHandler
from repro.core.documents import Document, normalize_keyword
from repro.core.keys import MasterKey
from repro.core.server import decode_doc_id, encode_doc_id
from repro.core.state import SnapshotStateMixin, StateJournal
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import ProtocolError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.storage.docstore import EncryptedDocumentStore

__all__ = ["NaiveServer", "NaiveClient", "make_naive"]


def _pack_document(doc: Document) -> bytes:
    """Serialize (data, keywords) for in-blob transport."""
    keywords_blob = b"\x00".join(
        w.encode("utf-8") for w in sorted(doc.keywords)
    )
    return struct.pack(">I", len(doc.data)) + doc.data + keywords_blob


def _unpack_document(blob: bytes) -> tuple[bytes, frozenset[str]]:
    """Invert :func:`_pack_document`."""
    (data_len,) = struct.unpack(">I", blob[:4])
    data = blob[4:4 + data_len]
    keywords_blob = blob[4 + data_len:]
    keywords = frozenset(
        part.decode("utf-8")
        for part in keywords_blob.split(b"\x00") if part
    )
    return data, keywords


class NaiveServer(SnapshotStateMixin, SseServerHandler):
    """Stores opaque blobs; the only query is "send me everything"."""

    def __init__(self) -> None:
        self.state_journal = StateJournal()
        self.documents = EncryptedDocumentStore(journal=self.state_journal)
        self.searches_handled = 0

    @property
    def unique_keywords(self) -> int:
        """The naive server holds no keyword structure at all."""
        return 0

    def handle(self, message: Message) -> Message:
        """STORE_DOCUMENT pairs in; NAIVE_FETCH_ALL returns the world."""
        if message.type == MessageType.BATCH_REQUEST:
            return self.handle_batch(message)
        if message.type == MessageType.STORE_DOCUMENT:
            fields = message.fields
            if len(fields) % 2:
                raise ProtocolError("STORE_DOCUMENT fields come in pairs")
            for i in range(0, len(fields), 2):
                self.documents.put(decode_doc_id(fields[i]), fields[i + 1])
            return Message(MessageType.ACK)
        if message.type == MessageType.NAIVE_FETCH_ALL:
            self.searches_handled += 1
            out: list[bytes] = []
            for doc_id in sorted(self.documents.ids()):
                out.append(encode_doc_id(doc_id))
                out.append(self.documents.get(doc_id))
            return Message(MessageType.DOCUMENTS_RESULT, tuple(out))
        raise ProtocolError(f"unsupported message type {message.type.name}")


class NaiveClient(SseClient):
    """Client that scans its own database on every search."""

    STATE_FORMAT = "repro.naive.client/1"

    def __init__(self, master_key: MasterKey, channel: Channel, *,
                 rng: RandomSource | None = None) -> None:
        super().__init__(channel)
        self._cipher = AuthenticatedCipher(
            master_key.k_m, rng=rng if rng is not None else SystemRandomSource()
        )

    def store(self, documents: Sequence[Document]) -> None:
        """Upload encrypted (data + keywords) blobs."""
        fields: list[bytes] = []
        for doc in documents:
            fields.append(encode_doc_id(doc.doc_id))
            fields.append(self._cipher.encrypt(
                _pack_document(doc), associated_data=encode_doc_id(doc.doc_id)
            ))
        self._channel.request(
            Message(MessageType.STORE_DOCUMENT, tuple(fields))
        ).expect(MessageType.ACK)

    def add_documents(self, documents: Sequence[Document]) -> None:
        """Updates are plain uploads — the cheapest update of any scheme."""
        self.store(documents)

    def search(self, keyword: str) -> SearchResult:
        """Fetch the whole database and filter after decryption."""
        keyword = normalize_keyword(keyword)
        reply = self._channel.request(Message(MessageType.NAIVE_FETCH_ALL))
        fields = reply.expect(MessageType.DOCUMENTS_RESULT)
        doc_ids: list[int] = []
        documents: list[bytes] = []
        for i in range(0, len(fields), 2):
            doc_id = decode_doc_id(fields[i])
            blob = self._cipher.decrypt(fields[i + 1],
                                        associated_data=fields[i])
            data, keywords = _unpack_document(blob)
            if keyword in keywords:
                doc_ids.append(doc_id)
                documents.append(data)
        return SearchResult(keyword, doc_ids, documents)


def make_naive(master_key: MasterKey, rng: RandomSource | None = None,
               model=None) -> tuple[NaiveClient, NaiveServer, Channel]:
    """Wire up the naive baseline over an instrumented channel."""
    server = NaiveServer()
    channel = Channel(server, model=model)
    return NaiveClient(master_key, channel, rng=rng), server, channel
