"""Song–Wagner–Perrig (SWP) baseline [20] — per-word searchable encryption.

The first practical SSE scheme (S&P 2000), reproduced here in its "hidden
search" variant.  Every keyword occurrence in every document becomes one
searchable 32-byte word ciphertext:

    X_i   = Ẽ(w)                      (deterministic pre-encryption, 32 B)
    S_i   ←  pseudo-random stream     (24 B, fresh per position)
    k_i   = f_{k'}(X_i)               (per-word check key)
    C_i   = X_i ⊕ ( S_i ‖ F_{k_i}(S_i) )

To search for w the client reveals ``X = Ẽ(w)`` and ``k = f_{k'}(X)``; the
server XORs X against *every* stored word ciphertext and accepts position i
iff the trailing 8 bytes equal ``F_k`` of the leading 24.  Search is
therefore **Θ(total keyword occurrences)** — the linear cost the paper's §3
identifies in conventional schemes — and this module's instrumentation
(``words_scanned_last_search``) feeds the S3-linear benchmark.

Updates are cheap: new documents just append word ciphertexts.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.core.api import SearchResult, SseClient, SseServerHandler
from repro.core.documents import Document, normalize_keyword
from repro.core.keys import MasterKey
from repro.core.server import decode_doc_id, encode_doc_id
from repro.core.state import SnapshotStateMixin, StateJournal
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.bytesutil import ct_equal, xor_bytes
from repro.crypto.hmac_sha256 import hmac_sha256
from repro.crypto.prf import Prf, derive_key
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import ProtocolError, StorageError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.storage.docstore import EncryptedDocumentStore

__all__ = ["SwpServer", "SwpClient", "make_swp", "WORD_SIZE"]

WORD_SIZE = 32
_STREAM_PART = 24
_CHECK_PART = 8

# Durable-state namespace: sequence(8) -> doc id(8) ‖ word ciphertext.
_SWP_PREFIX = b"swp:"


class SwpServer(SnapshotStateMixin, SseServerHandler):
    """Holds the flat list of word ciphertexts and linearly scans it."""

    def __init__(self) -> None:
        self.state_journal = StateJournal()
        self.documents = EncryptedDocumentStore(journal=self.state_journal)
        # (doc_id, word ciphertext) in storage order.
        self.word_ciphertexts: list[tuple[int, bytes]] = []
        self.searches_handled = 0
        self.words_scanned_last_search = 0

    @property
    def unique_keywords(self) -> int:
        """SWP has no per-unique-keyword state; report word count instead."""
        return len(self.word_ciphertexts)

    def handle(self, message: Message) -> Message:
        """STORE_DOCUMENT pairs / word-list triples; linear-scan search."""
        if message.type == MessageType.BATCH_REQUEST:
            return self.handle_batch(message)
        if message.type == MessageType.STORE_DOCUMENT:
            return self._handle_store(message)
        if message.type == MessageType.SWP_SEARCH_REQUEST:
            return self._handle_search(message)
        raise ProtocolError(f"unsupported message type {message.type.name}")

    def _handle_store(self, message: Message) -> Message:
        # Fields: doc_id, body ciphertext, word-ciphertext blob (n*32 bytes),
        # repeated per document.
        fields = message.fields
        if len(fields) % 3:
            raise ProtocolError("SWP store fields come in triples")
        for i in range(0, len(fields), 3):
            doc_id = decode_doc_id(fields[i])
            self.documents.put(doc_id, fields[i + 1])
            blob = fields[i + 2]
            if len(blob) % WORD_SIZE:
                raise ProtocolError("word blob must be a multiple of 32")
            for off in range(0, len(blob), WORD_SIZE):
                word_ct = blob[off:off + WORD_SIZE]
                sequence = len(self.word_ciphertexts)
                self.word_ciphertexts.append((doc_id, word_ct))
                self.state_journal.put(
                    _SWP_PREFIX + struct.pack(">Q", sequence),
                    encode_doc_id(doc_id) + word_ct,
                )
        return Message(MessageType.ACK)

    def _handle_search(self, message: Message) -> Message:
        x, check_key = message.expect(MessageType.SWP_SEARCH_REQUEST, 2)
        if len(x) != WORD_SIZE:
            raise ProtocolError("SWP search token must be 32 bytes")
        self.searches_handled += 1
        matches: list[int] = []
        seen: set[int] = set()
        scanned = 0
        for doc_id, word_ct in self.word_ciphertexts:
            scanned += 1
            plain = xor_bytes(word_ct, x)
            stream, check = plain[:_STREAM_PART], plain[_STREAM_PART:]
            expected = hmac_sha256(check_key, stream)[:_CHECK_PART]
            if ct_equal(check, expected) and doc_id not in seen:
                seen.add(doc_id)
                matches.append(doc_id)
        self.words_scanned_last_search = scanned
        out: list[bytes] = []
        for doc_id in sorted(matches):
            out.append(encode_doc_id(doc_id))
            out.append(self.documents.get(doc_id))
        return Message(MessageType.DOCUMENTS_RESULT, tuple(out))

    # -- snapshot protocol (see repro.core.state) --------------------------

    def _index_state_records(self):
        for sequence, (doc_id, word_ct) in enumerate(self.word_ciphertexts):
            yield (_SWP_PREFIX + struct.pack(">Q", sequence),
                   encode_doc_id(doc_id) + word_ct)

    def _state_loaders(self):
        loaders = super()._state_loaders()
        loaders[_SWP_PREFIX] = self._load_word_record
        return loaders

    def _load_word_record(self, key: bytes, value: bytes) -> None:
        if len(key) != len(_SWP_PREFIX) + 8 or len(value) != 8 + WORD_SIZE:
            raise StorageError("malformed SWP word record")
        (sequence,) = struct.unpack(">Q", key[len(_SWP_PREFIX):])
        self._loaded_words[sequence] = (decode_doc_id(value[:8]), value[8:])

    def _clear_state(self) -> None:
        super()._clear_state()
        self.word_ciphertexts = []
        self._loaded_words: dict[int, tuple[int, bytes]] = {}

    def _finish_load_state(self) -> None:
        # Storage order is observable (it is the scan order), so restore
        # it exactly and refuse gapped sequences.
        for expected, sequence in enumerate(sorted(self._loaded_words)):
            if sequence != expected:
                raise StorageError(
                    f"SWP word list has a gap at sequence {expected}"
                )
            self.word_ciphertexts.append(self._loaded_words[sequence])
        self._loaded_words = {}


class SwpClient(SseClient):
    """Client side: deterministic pre-encryption + per-position streams."""

    STATE_FORMAT = "repro.swp.client/1"

    def __init__(self, master_key: MasterKey, channel: Channel, *,
                 rng: RandomSource | None = None) -> None:
        super().__init__(channel)
        self._rng = rng if rng is not None else SystemRandomSource()
        self._cipher = AuthenticatedCipher(master_key.k_m, rng=self._rng)
        self._pre_prf = Prf(derive_key(master_key.k_w, b"swp-pre"),
                            label=b"repro.swp.pre")
        self._check_prf = Prf(derive_key(master_key.k_w, b"swp-check"),
                              label=b"repro.swp.check")

    def _pre_encrypt(self, keyword: str) -> bytes:
        """Deterministic Ẽ(w): 32-byte PRF image of the keyword."""
        return self._pre_prf.evaluate(keyword.encode("utf-8"))

    def _check_key(self, x: bytes) -> bytes:
        """k_i = f_{k'}(X_i)."""
        return self._check_prf.evaluate(x)

    def _word_ciphertext(self, keyword: str) -> bytes:
        x = self._pre_encrypt(keyword)
        stream = self._rng.random_bytes(_STREAM_PART)
        check = hmac_sha256(self._check_key(x), stream)[:_CHECK_PART]
        return xor_bytes(x, stream + check)

    def store(self, documents: Sequence[Document]) -> None:
        """Upload each document body plus one word ciphertext per keyword."""
        fields: list[bytes] = []
        for doc in documents:
            fields.append(encode_doc_id(doc.doc_id))
            fields.append(self._cipher.encrypt(
                doc.data, associated_data=encode_doc_id(doc.doc_id)
            ))
            blob = b"".join(
                self._word_ciphertext(w) for w in sorted(doc.keywords)
            )
            fields.append(blob)
        self._channel.request(
            Message(MessageType.STORE_DOCUMENT, tuple(fields))
        ).expect(MessageType.ACK)

    def add_documents(self, documents: Sequence[Document]) -> None:
        """Appending word ciphertexts is all an SWP update takes."""
        self.store(documents)

    def search(self, keyword: str) -> SearchResult:
        """One round; server does the linear scan."""
        keyword = normalize_keyword(keyword)
        x = self._pre_encrypt(keyword)
        reply = self._channel.request(
            # Revealing (X_w, k_w) IS the SWP search protocol: the server
            # re-derives the check part for every word ciphertext and
            # learns which positions match (defined leakage, SWP'00 §4.4).
            Message(MessageType.SWP_SEARCH_REQUEST, (x, self._check_key(x)))  # repro: allow(secret-flow)
        )
        fields = reply.expect(MessageType.DOCUMENTS_RESULT)
        doc_ids: list[int] = []
        documents: list[bytes] = []
        for i in range(0, len(fields), 2):
            doc_ids.append(decode_doc_id(fields[i]))
            documents.append(self._cipher.decrypt(
                fields[i + 1], associated_data=fields[i]
            ))
        return SearchResult(keyword, doc_ids, documents)


def make_swp(master_key: MasterKey, rng: RandomSource | None = None,
             model=None) -> tuple[SwpClient, SwpServer, Channel]:
    """Wire up the SWP baseline over an instrumented channel."""
    server = SwpServer()
    channel = Channel(server, model=model)
    return SwpClient(master_key, channel, rng=rng), server, channel
