"""Curtmola–Garay–Kamara–Ostrovsky SSE-1 baseline [10, 11].

The adaptive-security comparator the paper's related work discusses: an
encrypted inverted index built as

* an **array A** of encrypted linked-list nodes at random addresses — one
  list per keyword, node_j = ⟨doc_id, key_{j+1}, addr_{j+1}⟩ encrypted
  under key_j, so possession of (addr_1, key_1) unlocks exactly one list;
* a **lookup table T** mapping the keyword tag π(w) to (addr_1 ‖ key_1)
  masked with f_y(w).

Search(π(w), f_y(w)) is O(|D(w)|) — optimal — and leaks only the access
pattern.  The trade-off the paper §2 calls out: **updates require
rebuilding the whole index**, because node addresses, padding, and list
keys are sampled jointly over the full collection.  ``rebuilds`` and
``nodes_written_last_rebuild`` instrument exactly that cost for the
CMP-update benchmark.

The array is padded with dummy nodes to a fixed fill ratio so |A| reveals
only the total keyword-occurrence budget, as in the original construction.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.api import SearchResult, SseClient, SseServerHandler
from repro.core.documents import Document, normalize_keyword
from repro.core.keys import MasterKey
from repro.core.server import decode_doc_id, encode_doc_id
from repro.core.state import SnapshotStateMixin, StateJournal
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.bytesutil import xor_bytes
from repro.crypto.modes import ctr_xcrypt
from repro.crypto.prf import Prf, derive_key
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import ParameterError, ProtocolError, StorageError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.storage.docstore import EncryptedDocumentStore

__all__ = ["CgkoServer", "CgkoClient", "make_cgko"]

_NODE_PLAIN_SIZE = 8 + 16 + 8  # doc_id | next_key | next_addr
_NULL_ADDR = (1 << 64) - 1
_TABLE_VALUE_SIZE = 8 + 16  # addr | key
_ZERO_NONCE = bytes(8)  # node keys are single-use, fixed nonce is safe

# Durable-state namespaces: node array and lookup table.
_ARRAY_PREFIX = b"cgko.a:"  # address(8) -> encrypted node
_TABLE_PREFIX = b"cgko.t:"  # tag -> masked head pointer


def _encrypt_node(key: bytes, doc_id: int, next_key: bytes,
                  next_addr: int) -> bytes:
    plain = encode_doc_id(doc_id) + next_key + next_addr.to_bytes(8, "big")
    assert len(plain) == _NODE_PLAIN_SIZE
    return ctr_xcrypt(key, _ZERO_NONCE, plain)


def _decrypt_node(key: bytes, blob: bytes) -> tuple[int, bytes, int]:
    if len(blob) != _NODE_PLAIN_SIZE:
        raise ProtocolError("encrypted node has the wrong size")
    plain = ctr_xcrypt(key, _ZERO_NONCE, blob)
    return (decode_doc_id(plain[:8]), plain[8:24],
            int.from_bytes(plain[24:], "big"))


class CgkoServer(SnapshotStateMixin, SseServerHandler):
    """Holds the node array, the lookup table, and walks lists on search."""

    def __init__(self) -> None:
        self.state_journal = StateJournal()
        self.documents = EncryptedDocumentStore(journal=self.state_journal)
        self.array: dict[int, bytes] = {}
        self.table: dict[bytes, bytes] = {}
        self.searches_handled = 0
        self.nodes_walked_last_search = 0
        self.rebuilds = 0
        self.nodes_written_last_rebuild = 0

    @property
    def unique_keywords(self) -> int:
        """Number of lookup-table entries (== unique keywords indexed)."""
        return len(self.table)

    def handle(self, message: Message) -> Message:
        """Index uploads replace everything; search walks one list."""
        if message.type == MessageType.BATCH_REQUEST:
            return self.handle_batch(message)
        if message.type == MessageType.STORE_DOCUMENT:
            fields = message.fields
            if len(fields) % 2:
                raise ProtocolError("STORE_DOCUMENT fields come in pairs")
            for i in range(0, len(fields), 2):
                self.documents.put(decode_doc_id(fields[i]), fields[i + 1])
            return Message(MessageType.ACK)
        if message.type == MessageType.CGKO_SEARCH_REQUEST:
            return self._handle_search(message)
        if message.type == MessageType.ACK:
            raise ProtocolError("clients do not send ACK")
        if message.type == MessageType.ERROR:
            raise ProtocolError("clients do not send ERROR")
        if message.type == MessageType.S1_STORE_ENTRY:
            # Reused message type for index upload: fields alternate
            # addr(8) | node, then a sentinel, then tag | masked pairs.
            return self._handle_index_upload(message)
        raise ProtocolError(f"unsupported message type {message.type.name}")

    def _handle_index_upload(self, message: Message) -> Message:
        fields = message.fields
        if not fields or len(fields[0]) != 8:
            raise ProtocolError("index upload must start with a node count")
        n_nodes = int.from_bytes(fields[0], "big")
        expected = 1 + 2 * n_nodes
        if len(fields) < expected or (len(fields) - expected) % 2:
            raise ProtocolError("malformed index upload")
        # The upload REPLACES the whole index: journal the removal of
        # every old entry, then the new ones (the journal nets these out,
        # so an address reused across rebuilds is a single overwrite).
        for addr in self.array:
            self.state_journal.delete(_ARRAY_PREFIX + addr.to_bytes(8, "big"))
        for tag in self.table:
            self.state_journal.delete(_TABLE_PREFIX + tag)
        self.array = {}
        self.table = {}
        for i in range(n_nodes):
            addr = int.from_bytes(fields[1 + 2 * i], "big")
            self.array[addr] = fields[2 + 2 * i]
            self.state_journal.put(_ARRAY_PREFIX + addr.to_bytes(8, "big"),
                                   fields[2 + 2 * i])
        for i in range(expected, len(fields), 2):
            self.table[fields[i]] = fields[i + 1]
            self.state_journal.put(_TABLE_PREFIX + fields[i], fields[i + 1])
        self.rebuilds += 1
        self.nodes_written_last_rebuild = n_nodes
        return Message(MessageType.ACK)

    def _handle_search(self, message: Message) -> Message:
        tag, mask = message.expect(MessageType.CGKO_SEARCH_REQUEST, 2)
        self.searches_handled += 1
        self.nodes_walked_last_search = 0
        value = self.table.get(tag)
        if value is None:
            return Message(MessageType.DOCUMENTS_RESULT)
        if len(mask) != _TABLE_VALUE_SIZE:
            raise ProtocolError("bad table mask size")
        head = xor_bytes(value, mask)
        addr = int.from_bytes(head[:8], "big")
        key = head[8:]
        doc_ids: list[int] = []
        while addr != _NULL_ADDR:
            blob = self.array.get(addr)
            if blob is None:
                raise ProtocolError("dangling node address")
            doc_id, key, addr = _decrypt_node(key, blob)
            doc_ids.append(doc_id)
            self.nodes_walked_last_search += 1
        out: list[bytes] = []
        for doc_id in sorted(set(doc_ids)):
            out.append(encode_doc_id(doc_id))
            out.append(self.documents.get(doc_id))
        return Message(MessageType.DOCUMENTS_RESULT, tuple(out))

    # -- snapshot protocol (see repro.core.state) --------------------------

    def _index_state_records(self):
        for addr in sorted(self.array):
            yield _ARRAY_PREFIX + addr.to_bytes(8, "big"), self.array[addr]
        for tag in sorted(self.table):
            yield _TABLE_PREFIX + tag, self.table[tag]

    def _state_loaders(self):
        loaders = super()._state_loaders()
        loaders[_ARRAY_PREFIX] = self._load_array_record
        loaders[_TABLE_PREFIX] = self._load_table_record
        return loaders

    def _load_array_record(self, key: bytes, value: bytes) -> None:
        if len(key) != len(_ARRAY_PREFIX) + 8:
            raise StorageError("malformed CGKO array record key")
        self.array[int.from_bytes(key[len(_ARRAY_PREFIX):], "big")] = value

    def _load_table_record(self, key: bytes, value: bytes) -> None:
        self.table[key[len(_TABLE_PREFIX):]] = value

    def _clear_state(self) -> None:
        super()._clear_state()
        self.array = {}
        self.table = {}


class CgkoClient(SseClient):
    """Client side: builds (and on every update, *rebuilds*) the index.

    The client keeps the plaintext keyword→ids map so it can rebuild — the
    very statefulness the paper's schemes avoid.  ``padding_factor``
    controls how many dummy nodes pad the array (|A| = factor × real
    nodes, minimum 8).
    """

    STATE_FORMAT = "repro.cgko.client/1"

    def __init__(self, master_key: MasterKey, channel: Channel, *,
                 padding_factor: float = 1.25,
                 rng: RandomSource | None = None) -> None:
        super().__init__(channel)
        if padding_factor < 1.0:
            raise ParameterError("padding factor must be >= 1")
        self._rng = rng if rng is not None else SystemRandomSource()
        self._cipher = AuthenticatedCipher(master_key.k_m, rng=self._rng)
        self._tag_prf = Prf(derive_key(master_key.k_w, b"cgko-tag"),
                            label=b"repro.cgko.tag")
        self._mask_prf = Prf(derive_key(master_key.k_w, b"cgko-mask"),
                             label=b"repro.cgko.mask")
        self._padding_factor = padding_factor
        self._plain_index: dict[str, set[int]] = {}

    def export_state(self) -> dict:
        """The rebuild index — the statefulness this baseline demonstrates."""
        state = super().export_state()
        state["index"] = {
            keyword: sorted(ids)
            for keyword, ids in self._plain_index.items()
        }
        return state

    def import_state(self, state: dict) -> None:
        """Restore the plaintext rebuild index (no re-upload happens)."""
        super().import_state(state)
        index = state.get("index")
        if not isinstance(index, dict):
            raise ParameterError("CGKO client state is missing its index")
        self._plain_index = {
            keyword: set(int(i) for i in ids)
            for keyword, ids in index.items()
        }

    def _tag(self, keyword: str) -> bytes:
        return self._tag_prf.evaluate_truncated(keyword.encode("utf-8"), 16)

    def _mask(self, keyword: str) -> bytes:
        return self._mask_prf.evaluate(keyword.encode("utf-8"))[:_TABLE_VALUE_SIZE]

    def _index_message(self) -> Message:
        """Sample fresh addresses/keys for every list; the upload message."""
        n_real = sum(len(ids) for ids in self._plain_index.values())
        n_total = max(8, int(n_real * self._padding_factor))
        # Distinct random addresses from a 2^63 space.
        addresses: set[int] = set()
        while len(addresses) < n_total:
            addresses.add(self._rng.randint_below(1 << 63))
        free = list(addresses)
        fields: list[bytes] = [n_total.to_bytes(8, "big")]
        table_fields: list[bytes] = []
        cursor = 0
        for keyword in sorted(self._plain_index):
            ids = sorted(self._plain_index[keyword])
            if not ids:
                continue
            node_addrs = free[cursor:cursor + len(ids)]
            cursor += len(ids)
            node_keys = [self._rng.random_bytes(16) for _ in ids]
            for j, doc_id in enumerate(ids):
                last = j == len(ids) - 1
                next_key = bytes(16) if last else node_keys[j + 1]
                next_addr = _NULL_ADDR if last else node_addrs[j + 1]
                node = _encrypt_node(node_keys[j], doc_id, next_key, next_addr)
                fields.append(node_addrs[j].to_bytes(8, "big"))
                fields.append(node)
            head = node_addrs[0].to_bytes(8, "big") + node_keys[0]
            table_fields.append(self._tag(keyword))
            table_fields.append(xor_bytes(head, self._mask(keyword)))
        # Dummy nodes fill the remaining addresses with random bytes.
        for addr in free[cursor:]:
            fields.append(addr.to_bytes(8, "big"))
            fields.append(self._rng.random_bytes(_NODE_PLAIN_SIZE))
        return Message(MessageType.S1_STORE_ENTRY,
                       tuple(fields) + tuple(table_fields))

    def store(self, documents: Sequence[Document]) -> None:
        """Upload documents and build the encrypted inverted index.

        Document bodies and the rebuilt index travel in ONE batch frame,
        so the server applies (and persists) the whole rebuild atomically
        — a crash can never leave new documents visible without their
        index entries.
        """
        fields: list[bytes] = []
        for doc in documents:
            fields.append(encode_doc_id(doc.doc_id))
            fields.append(self._cipher.encrypt(
                doc.data, associated_data=encode_doc_id(doc.doc_id)
            ))
            for keyword in doc.keywords:
                self._plain_index.setdefault(keyword, set()).add(doc.doc_id)
        messages: list[Message] = []
        if fields:
            messages.append(
                Message(MessageType.STORE_DOCUMENT, tuple(fields)))
        messages.append(self._index_message())
        for reply in self._channel.request_many(messages):
            reply.expect(MessageType.ACK)

    def add_documents(self, documents: Sequence[Document]) -> None:
        """Updates trigger a full rebuild — the cost this baseline exists
        to demonstrate."""
        self.store(documents)

    def search(self, keyword: str) -> SearchResult:
        """One round, O(|D(w)|) server work."""
        keyword = normalize_keyword(keyword)
        reply = self._channel.request(
            # Revealing the per-keyword tag and mask IS the CGKO search
            # protocol: the pair lets the server unlock exactly the lists
            # for this keyword (defined leakage, CGKO'06 Section 4).
            Message(MessageType.CGKO_SEARCH_REQUEST,  # repro: allow(secret-flow)
                    (self._tag(keyword), self._mask(keyword)))
        )
        fields = reply.expect(MessageType.DOCUMENTS_RESULT)
        doc_ids: list[int] = []
        documents: list[bytes] = []
        for i in range(0, len(fields), 2):
            doc_ids.append(decode_doc_id(fields[i]))
            documents.append(self._cipher.decrypt(
                fields[i + 1], associated_data=fields[i]
            ))
        return SearchResult(keyword, doc_ids, documents)


def make_cgko(master_key: MasterKey, padding_factor: float = 1.25,
              rng: RandomSource | None = None,
              model=None) -> tuple[CgkoClient, CgkoServer, Channel]:
    """Wire up the CGKO SSE-1 baseline over an instrumented channel."""
    server = CgkoServer()
    channel = Channel(server, model=model)
    client = CgkoClient(master_key, channel, padding_factor=padding_factor,
                        rng=rng)
    return client, server, channel
