"""Chang–Mitzenmacher baseline [7] — masked per-document index bits.

ACNS 2005: assume a public dictionary of d possible keywords.  Each stored
document j carries a d-bit indicator array, bitwise-masked with
pseudo-random bits the client can selectively open:

    mask bit for (position i, document j)  =  f(s_i, j),  s_i = PRF(k, i)
    stored bit  M_j[i]  =  I_j[i] ⊕ f(s_i, j)

Searching keyword w = dictionary position i reveals ``s_i``; the server
recomputes every document's mask bit at position i, unmasks that single
column, and returns the documents whose indicator bit is 1.  Nothing else
ever becomes unmasked: each query opens exactly one column forever (the
scheme's per-query leakage is that column — comparable to the access
pattern the other schemes leak).

Cost profile: O(n) search (one PRF per document), O(d) bits of index per
document, constant-cost updates — the "simulation-based security before
Curtmola, linear search" point in the paper's related work.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.api import SearchResult, SseClient, SseServerHandler
from repro.core.documents import Document, normalize_keyword
from repro.core.keys import MasterKey
from repro.core.server import decode_doc_id, encode_doc_id
from repro.core.state import SnapshotStateMixin, StateJournal
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.hmac_sha256 import hmac_sha256
from repro.crypto.prf import Prf, derive_key
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import (ParameterError, ProtocolError, StorageError,
                          UnknownKeywordError)
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.storage.docstore import EncryptedDocumentStore

__all__ = ["CmServer", "CmClient", "make_cm"]


def _mask_bit(position_key: bytes, doc_id: int) -> int:
    """f(s_i, j): one pseudo-random mask bit."""
    return hmac_sha256(position_key, encode_doc_id(doc_id))[0] & 1


# Durable-state namespace: doc id(8) -> masked indicator row.
_CM_PREFIX = b"cm:"


class CmServer(SnapshotStateMixin, SseServerHandler):
    """Stores one masked indicator array per document; opens columns."""

    def __init__(self, dictionary_size: int) -> None:
        if dictionary_size < 1:
            raise ParameterError("dictionary must be non-empty")
        self.dictionary_size = dictionary_size
        self.state_journal = StateJournal()
        self.documents = EncryptedDocumentStore(journal=self.state_journal)
        self.masked_rows: dict[int, bytearray] = {}
        self.searches_handled = 0
        self.rows_probed_last_search = 0
        # Columns opened by past queries (the scheme's cumulative leakage).
        self.opened_columns: set[int] = set()

    @property
    def unique_keywords(self) -> int:
        """The public dictionary size (keyword structure is positional)."""
        return self.dictionary_size

    def handle(self, message: Message) -> Message:
        """Store (id, body, masked row) triples; search opens one column."""
        if message.type == MessageType.BATCH_REQUEST:
            return self.handle_batch(message)
        if message.type == MessageType.STORE_DOCUMENT:
            return self._handle_store(message)
        if message.type == MessageType.CGKO_SEARCH_REQUEST:
            # Reused wire tag: fields are (position, s_i).
            return self._handle_search(message)
        raise ProtocolError(f"unsupported message type {message.type.name}")

    def _handle_store(self, message: Message) -> Message:
        fields = message.fields
        if len(fields) % 3:
            raise ProtocolError("CM store fields come in triples")
        expected_row = (self.dictionary_size + 7) // 8
        for i in range(0, len(fields), 3):
            doc_id = decode_doc_id(fields[i])
            if len(fields[i + 2]) != expected_row:
                raise ProtocolError("masked row has the wrong width")
            self.documents.put(doc_id, fields[i + 1])
            self.masked_rows[doc_id] = bytearray(fields[i + 2])
            self.state_journal.put(_CM_PREFIX + encode_doc_id(doc_id),
                                   fields[i + 2])
        return Message(MessageType.ACK)

    def _handle_search(self, message: Message) -> Message:
        position_bytes, position_key = message.expect(
            MessageType.CGKO_SEARCH_REQUEST, 2
        )
        position = int.from_bytes(position_bytes, "big")
        if position >= self.dictionary_size:
            raise ProtocolError("dictionary position out of range")
        self.searches_handled += 1
        self.opened_columns.add(position)
        matches: list[int] = []
        probed = 0
        for doc_id in sorted(self.masked_rows):
            probed += 1
            row = self.masked_rows[doc_id]
            stored = (row[position // 8] >> (position % 8)) & 1
            if stored ^ _mask_bit(position_key, doc_id):
                matches.append(doc_id)
        self.rows_probed_last_search = probed
        out: list[bytes] = []
        for doc_id in matches:
            out.append(encode_doc_id(doc_id))
            out.append(self.documents.get(doc_id))
        return Message(MessageType.DOCUMENTS_RESULT, tuple(out))

    # -- snapshot protocol (see repro.core.state) --------------------------
    # ``opened_columns`` is leakage bookkeeping about past queries, not
    # index state, so it stays out of the snapshot.

    def _index_state_records(self):
        for doc_id in sorted(self.masked_rows):
            yield (_CM_PREFIX + encode_doc_id(doc_id),
                   bytes(self.masked_rows[doc_id]))

    def _state_loaders(self):
        loaders = super()._state_loaders()
        loaders[_CM_PREFIX] = self._load_row_record
        return loaders

    def _load_row_record(self, key: bytes, value: bytes) -> None:
        if len(key) != len(_CM_PREFIX) + 8:
            raise StorageError("malformed CM row record key")
        if len(value) != (self.dictionary_size + 7) // 8:
            raise StorageError(
                "stored indicator row width does not match this server's "
                "dictionary size"
            )
        self.masked_rows[decode_doc_id(key[len(_CM_PREFIX):])] = \
            bytearray(value)

    def _clear_state(self) -> None:
        super()._clear_state()
        self.masked_rows = {}


class CmClient(SseClient):
    """Client side: fixed public dictionary, per-position mask keys."""

    STATE_FORMAT = "repro.cm.client/1"

    def __init__(self, master_key: MasterKey, channel: Channel, *,
                 dictionary: Sequence[str],
                 rng: RandomSource | None = None) -> None:
        super().__init__(channel)
        if not dictionary:
            raise ParameterError("CM requires a fixed keyword dictionary")
        normalized = [normalize_keyword(w) for w in dictionary]
        if len(set(normalized)) != len(normalized):
            raise ParameterError("dictionary keywords must be unique")
        self._positions = {w: i for i, w in enumerate(normalized)}
        self._rng = rng if rng is not None else SystemRandomSource()
        self._cipher = AuthenticatedCipher(master_key.k_m, rng=self._rng)
        self._position_prf = Prf(derive_key(master_key.k_w, b"cm-column"),
                                 label=b"repro.cm.column")

    @property
    def dictionary_size(self) -> int:
        return len(self._positions)

    def _position_key(self, position: int) -> bytes:
        """s_i = PRF(k, i)."""
        return self._position_prf.evaluate(position.to_bytes(4, "big"))

    def _masked_row(self, doc: Document) -> bytes:
        row = bytearray((len(self._positions) + 7) // 8)
        for keyword, position in self._positions.items():
            bit = 1 if keyword in doc.keywords else 0
            masked = bit ^ _mask_bit(self._position_key(position),
                                     doc.doc_id)
            if masked:
                row[position // 8] |= 1 << (position % 8)
        return bytes(row)

    def store(self, documents: Sequence[Document]) -> None:
        """Upload (id, encrypted body, masked indicator row) triples."""
        for doc in documents:
            unknown = doc.keywords - set(self._positions)
            if unknown:
                raise ParameterError(
                    f"keywords outside the dictionary: {sorted(unknown)[:3]}"
                )
        fields: list[bytes] = []
        for doc in documents:
            fields.append(encode_doc_id(doc.doc_id))
            fields.append(self._cipher.encrypt(
                doc.data, associated_data=encode_doc_id(doc.doc_id)
            ))
            fields.append(self._masked_row(doc))
        self._channel.request(
            Message(MessageType.STORE_DOCUMENT, tuple(fields))
        ).expect(MessageType.ACK)

    def add_documents(self, documents: Sequence[Document]) -> None:
        """Updates are per-document rows — constant cost, like Goh."""
        self.store(documents)

    def search(self, keyword: str) -> SearchResult:
        """Reveal one column key; the server scans all n rows."""
        keyword = normalize_keyword(keyword)
        position = self._positions.get(keyword)
        if position is None:
            raise UnknownKeywordError(keyword)
        # Handing over the column key s_i IS the Chang–Mitzenmacher search
        # protocol: the server recomputes the masked bit of every row for
        # this one dictionary position (defined leakage of the scheme).
        reply = self._channel.request(Message(  # repro: allow(secret-flow)
            MessageType.CGKO_SEARCH_REQUEST,
            (position.to_bytes(4, "big"), self._position_key(position)),
        ))
        fields = reply.expect(MessageType.DOCUMENTS_RESULT)
        doc_ids: list[int] = []
        documents: list[bytes] = []
        for i in range(0, len(fields), 2):
            doc_ids.append(decode_doc_id(fields[i]))
            documents.append(self._cipher.decrypt(
                fields[i + 1], associated_data=fields[i]
            ))
        return SearchResult(keyword, doc_ids, documents)


def make_cm(master_key: MasterKey, dictionary: Sequence[str],
            rng: RandomSource | None = None,
            model=None) -> tuple[CmClient, CmServer, Channel]:
    """Wire up the Chang–Mitzenmacher baseline over an instrumented channel."""
    server = CmServer(dictionary_size=len(dictionary))
    channel = Channel(server, model=model)
    return (CmClient(master_key, channel, dictionary=dictionary, rng=rng),
            server, channel)
