"""Baseline schemes the paper compares against (§2, §3).

* :mod:`repro.baselines.naive` — download-and-scan.
* :mod:`repro.baselines.swp`   — Song–Wagner–Perrig per-word encryption.
* :mod:`repro.baselines.goh`   — Goh Z-IDX per-document Bloom filters.
* :mod:`repro.baselines.cgko`  — Curtmola et al. SSE-1 encrypted inverted
  index (fast search, rebuild-on-update).
* :mod:`repro.baselines.chang_mitzenmacher` — Chang–Mitzenmacher masked
  per-document dictionary bits (fixed dictionary, O(n) search).
"""

from repro.baselines.cgko import CgkoClient, CgkoServer, make_cgko
from repro.baselines.chang_mitzenmacher import CmClient, CmServer, make_cm
from repro.baselines.goh import GohClient, GohServer, make_goh
from repro.baselines.naive import NaiveClient, NaiveServer, make_naive
from repro.baselines.swp import SwpClient, SwpServer, make_swp

__all__ = [
    "CgkoClient",
    "CmClient",
    "CmServer",
    "CgkoServer",
    "GohClient",
    "GohServer",
    "NaiveClient",
    "NaiveServer",
    "SwpClient",
    "SwpServer",
    "make_cgko",
    "make_cm",
    "make_goh",
    "make_naive",
    "make_swp",
]
