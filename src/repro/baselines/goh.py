"""Goh's Z-IDX baseline [12] — one Bloom-filter secure index per document.

For document id *d* and keyword *w*:

* trapdoor  T(w) = (y_1, ..., y_r) with y_i = f(k_i, w) — computable only
  by the key holder;
* codeword  C(w, d) = (f(y_1, d), ..., f(y_r, d)) — document-specific, so
  equal keywords give unrelated Bloom positions in different documents;
* index(d) = Bloom filter containing C(w, d) for every w ∈ W_d, blinded
  with random extra bits so filters don't reveal keyword counts.

Search(T): for each document the server derives the codeword from the
trapdoor and the public doc id, then probes that document's filter —
**Θ(n · r)** work, the other linear-search comparator for the S3 bench.
Updates are cheap and local (build one new filter).  Bloom false positives
make Search one-sided: no false negatives, occasional spurious documents
(IND-CKA hides which).  ``false_positives_last_search`` counts them when
the caller supplies ground truth.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.api import SearchResult, SseClient, SseServerHandler
from repro.core.documents import Document, normalize_keyword
from repro.core.keys import MasterKey
from repro.core.server import decode_doc_id, encode_doc_id
from repro.core.state import SnapshotStateMixin, StateJournal
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.bytesutil import bytes_to_int
from repro.crypto.hmac_sha256 import hmac_sha256
from repro.crypto.prf import derive_key
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.ds.bloom import BloomFilter, optimal_parameters
from repro.errors import ProtocolError, StorageError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType
from repro.storage.docstore import EncryptedDocumentStore

__all__ = ["GohServer", "GohClient", "make_goh", "DEFAULT_FP_RATE"]

DEFAULT_FP_RATE = 0.001

# Durable-state namespace: doc id(8) -> raw filter bits.
_GOH_PREFIX = b"goh:"


class GohServer(SnapshotStateMixin, SseServerHandler):
    """Holds one (blinded) Bloom filter per document and probes them all."""

    def __init__(self, bloom_bits: int, bloom_hashes: int) -> None:
        self.state_journal = StateJournal()
        self.documents = EncryptedDocumentStore(journal=self.state_journal)
        self.filters: dict[int, BloomFilter] = {}
        self.bloom_bits = bloom_bits
        self.bloom_hashes = bloom_hashes
        self.searches_handled = 0
        self.filters_probed_last_search = 0

    @property
    def unique_keywords(self) -> int:
        """Z-IDX stores no global keyword state; report document count."""
        return len(self.filters)

    def handle(self, message: Message) -> Message:
        """Store (id, body, filter) triples; search probes every filter."""
        if message.type == MessageType.BATCH_REQUEST:
            return self.handle_batch(message)
        if message.type == MessageType.STORE_DOCUMENT:
            return self._handle_store(message)
        if message.type == MessageType.GOH_SEARCH_REQUEST:
            return self._handle_search(message)
        raise ProtocolError(f"unsupported message type {message.type.name}")

    def _handle_store(self, message: Message) -> Message:
        fields = message.fields
        if len(fields) % 3:
            raise ProtocolError("Goh store fields come in triples")
        for i in range(0, len(fields), 3):
            doc_id = decode_doc_id(fields[i])
            self.documents.put(doc_id, fields[i + 1])
            bf = BloomFilter(self.bloom_bits, self.bloom_hashes)
            blob = fields[i + 2]
            if len(blob) != len(bf.to_bytes()):
                raise ProtocolError("bloom filter has the wrong width")
            bf._bits = bytearray(blob)  # raw upload of the client's filter
            self.filters[doc_id] = bf
            self.state_journal.put(_GOH_PREFIX + encode_doc_id(doc_id), blob)
        return Message(MessageType.ACK)

    def _positions_for_doc(self, trapdoor: tuple[bytes, ...],
                           doc_id: int) -> list[int]:
        """Derive the per-document codeword positions from the trapdoor."""
        positions = []
        doc_bytes = encode_doc_id(doc_id)
        for y in trapdoor:
            digest = hmac_sha256(y, doc_bytes)
            positions.append(bytes_to_int(digest[:8]) % self.bloom_bits)
        return positions

    def _handle_search(self, message: Message) -> Message:
        trapdoor = message.expect(MessageType.GOH_SEARCH_REQUEST)
        if len(trapdoor) != self.bloom_hashes:
            raise ProtocolError("trapdoor arity must equal the hash count")
        self.searches_handled += 1
        probed = 0
        matches: list[int] = []
        for doc_id in sorted(self.filters):
            probed += 1
            positions = self._positions_for_doc(trapdoor, doc_id)
            if self.filters[doc_id].contains_positions(positions):
                matches.append(doc_id)
        self.filters_probed_last_search = probed
        out: list[bytes] = []
        for doc_id in matches:
            out.append(encode_doc_id(doc_id))
            out.append(self.documents.get(doc_id))
        return Message(MessageType.DOCUMENTS_RESULT, tuple(out))

    # -- snapshot protocol (see repro.core.state) --------------------------

    def _index_state_records(self):
        for doc_id in sorted(self.filters):
            yield (_GOH_PREFIX + encode_doc_id(doc_id),
                   self.filters[doc_id].to_bytes())

    def _state_loaders(self):
        loaders = super()._state_loaders()
        loaders[_GOH_PREFIX] = self._load_filter_record
        return loaders

    def _load_filter_record(self, key: bytes, value: bytes) -> None:
        if len(key) != len(_GOH_PREFIX) + 8:
            raise StorageError("malformed Goh filter record key")
        bf = BloomFilter(self.bloom_bits, self.bloom_hashes)
        if len(value) != len(bf.to_bytes()):
            raise StorageError(
                "stored bloom filter width does not match this server's "
                "bloom parameters"
            )
        bf._bits = bytearray(value)
        self.filters[decode_doc_id(key[len(_GOH_PREFIX):])] = bf

    def _clear_state(self) -> None:
        super()._clear_state()
        self.filters = {}


class GohClient(SseClient):
    """Client side: builds per-document blinded filters, issues trapdoors.

    ``expected_keywords_per_doc`` sizes the filters; ``blind`` adds the
    §4.1-of-Goh random bits so every filter carries the same apparent load.
    """

    STATE_FORMAT = "repro.goh.client/1"

    def __init__(self, master_key: MasterKey, channel: Channel, *,
                 expected_keywords_per_doc: int = 64,
                 false_positive_rate: float = DEFAULT_FP_RATE,
                 blind: bool = True,
                 rng: RandomSource | None = None) -> None:
        super().__init__(channel)
        self._rng = rng if rng is not None else SystemRandomSource()
        self._cipher = AuthenticatedCipher(master_key.k_m, rng=self._rng)
        self.bloom_bits, self.bloom_hashes = optimal_parameters(
            expected_keywords_per_doc, false_positive_rate
        )
        self._trapdoor_keys = [
            derive_key(master_key.k_w, b"goh-trapdoor-%d" % i)
            for i in range(self.bloom_hashes)
        ]
        self._expected_keywords = expected_keywords_per_doc
        self._blind = blind

    def trapdoor(self, keyword: str) -> tuple[bytes, ...]:
        """T(w) = (f(k_1, w), ..., f(k_r, w))."""
        word = normalize_keyword(keyword).encode("utf-8")
        return tuple(hmac_sha256(k, word) for k in self._trapdoor_keys)

    def _build_filter(self, doc: Document) -> BloomFilter:
        bf = BloomFilter(self.bloom_bits, self.bloom_hashes)
        doc_bytes = encode_doc_id(doc.doc_id)
        for keyword in doc.keywords:
            positions = [
                bytes_to_int(hmac_sha256(y, doc_bytes)[:8]) % self.bloom_bits
                for y in self.trapdoor(keyword)
            ]
            bf.add_positions(positions)
        if self._blind:
            # Top every filter up to the same apparent keyword count so the
            # server cannot read |W_d| off the fill ratio.
            deficit = max(0, self._expected_keywords - len(doc.keywords))
            bf.set_random_bits(deficit * self.bloom_hashes, self._rng)
        return bf

    def store(self, documents: Sequence[Document]) -> None:
        """Upload (id, encrypted body, bloom filter) per document."""
        fields: list[bytes] = []
        for doc in documents:
            fields.append(encode_doc_id(doc.doc_id))
            fields.append(self._cipher.encrypt(
                doc.data, associated_data=encode_doc_id(doc.doc_id)
            ))
            fields.append(self._build_filter(doc).to_bytes())
        self._channel.request(
            Message(MessageType.STORE_DOCUMENT, tuple(fields))
        ).expect(MessageType.ACK)

    def add_documents(self, documents: Sequence[Document]) -> None:
        """Per-document filters make updates purely local and cheap."""
        self.store(documents)

    def search(self, keyword: str) -> SearchResult:
        """One round; server probes all n filters (possible false positives)."""
        reply = self._channel.request(
            Message(MessageType.GOH_SEARCH_REQUEST, self.trapdoor(keyword))
        )
        fields = reply.expect(MessageType.DOCUMENTS_RESULT)
        doc_ids: list[int] = []
        documents: list[bytes] = []
        for i in range(0, len(fields), 2):
            doc_ids.append(decode_doc_id(fields[i]))
            documents.append(self._cipher.decrypt(
                fields[i + 1], associated_data=fields[i]
            ))
        return SearchResult(normalize_keyword(keyword), doc_ids, documents)


def make_goh(master_key: MasterKey, expected_keywords_per_doc: int = 64,
             false_positive_rate: float = DEFAULT_FP_RATE,
             blind: bool = True, rng: RandomSource | None = None,
             model=None) -> tuple[GohClient, GohServer, Channel]:
    """Wire up the Goh Z-IDX baseline over an instrumented channel."""
    bits, hashes = optimal_parameters(expected_keywords_per_doc,
                                      false_positive_rate)
    server = GohServer(bloom_bits=bits, bloom_hashes=hashes)
    channel = Channel(server, model=model)
    client = GohClient(master_key, channel,
                       expected_keywords_per_doc=expected_keywords_per_doc,
                       false_positive_rate=false_positive_rate,
                       blind=blind, rng=rng)
    return client, server, channel
