"""Generic write-through persistence for ANY scheme's server.

The in-memory servers are ideal for tests and benchmarks; a real outsourced
deployment (the paper's §6 PHR⁺ story) needs the server to survive restarts
and the thin client to carry its counters between sessions.

:class:`DurableServer` wraps any handler implementing the snapshot protocol
of :class:`~repro.core.api.SseServerHandler` around any
:class:`~repro.storage.kvstore.KvStore`:

* **open**: if the store holds records, feed them through ``load_state``
  (cold-start recovery); if the store is empty but the wrapped server
  already has state, snapshot it in one batch;
* **write-through**: after every handled message, drain the handler's
  :class:`~repro.core.state.StateJournal` into the store as ONE batched
  log append (one fsync per message, however many keywords it touched);
* **observability**: bytes written, records written, flushes, compactions
  and live/dead record gauges land in the shared
  :class:`~repro.obs.metrics.Metrics` registry;
* **close**: flush, then compact when enough of the log is dead.

The wrapper knows nothing about schemes — no private imports, no index
rebuild code.  Everything scheme-specific lives behind ``state_records`` /
``load_state`` (see :mod:`repro.core.state` for the key namespaces).

:func:`export_client_state` / :func:`restore_client_state` round-trip any
client's non-key state (counters, epoch, rebuild indexes) as a small JSON
blob.  The master key is intentionally NOT included — key storage is the
caller's problem (a password vault, a smartcard), and serializing it
casually is how keys leak.
"""

from __future__ import annotations

import json
import time

from repro.core.api import SseClient
from repro.net.messages import Message
from repro.net.session import is_read_request
from repro.obs.metrics import Metrics, NULL_METRICS
from repro.obs.trace import span
from repro.storage.kvstore import KvStore

__all__ = ["DurableServer", "export_client_state", "restore_client_state"]


class DurableServer:
    """Write-through durability for any snapshot-capable server handler.

    Drop-in for the wrapped handler anywhere a ``handle(message)`` object
    is expected (:class:`~repro.net.channel.Channel`,
    :class:`~repro.net.tcp.TcpSseServer`); all other attributes —
    instrumentation counters, ``documents``, ``unique_keywords`` —
    delegate to the wrapped handler.

    Handlers whose mutations feed a :class:`StateJournal` (all shipped
    schemes) get precise batched appends.  A journal-less handler that
    still implements ``state_records`` falls back to mirror-diffing its
    full snapshot after each write message — correct, just O(state).
    """

    #: close() compacts when dead records exceed this fraction of live.
    COMPACT_DEAD_RATIO = 0.25

    def __init__(self, handler, store: KvStore,
                 metrics: Metrics | None = None, *,
                 key_prefix: bytes = b"") -> None:
        self._inner = handler
        self._store = store
        self._metrics = metrics if metrics is not None else NULL_METRICS
        # Namespace wrapper around every persisted key (``t:<id>:`` in
        # multi-tenant deployments): applied on write, stripped on load,
        # and used to filter recovery/sync to this wrapper's own slice —
        # several DurableServers can then share one journal/snapshot
        # store without ever mixing records.
        self._prefix = bytes(key_prefix)
        self._journal = getattr(handler, "state_journal", None)
        self._mirror: dict[bytes, bytes] | None = None
        if self._journal is not None:
            self._journal.enabled = True
        own_records = self._own_records() if len(store) else {}
        if own_records:
            handler.load_state(own_records.items())
            if self._journal is not None:
                # Everything the load journaled came FROM the store;
                # writing it back would only duplicate the log.
                self._journal.drain()
        else:
            snapshot = dict(handler.state_records())
            if snapshot:
                # Wrapping an already-populated in-memory server: make its
                # current state the first durable batch.
                self._write_batch(snapshot, set())
            if self._journal is not None:
                self._journal.drain()
        if self._journal is None:
            self._mirror = dict(handler.state_records())
        self._update_gauges()

    def _own_records(self) -> dict[bytes, bytes]:
        """This wrapper's slice of the store, prefixes stripped."""
        strip = len(self._prefix)
        return {
            key[strip:]: self._store.get(key)
            for key in self._store.keys()
            if key.startswith(self._prefix)
        }

    @property
    def inner(self):
        """The wrapped scheme server."""
        return self._inner

    @property
    def store(self) -> KvStore:
        """The backing key-value store."""
        return self._store

    @property
    def metrics(self) -> Metrics:
        return self._metrics

    @metrics.setter
    def metrics(self, registry: Metrics) -> None:
        # TcpSseServer swaps its registry into a handler carrying the
        # no-op default; propagate so scheme counters land there too.
        self._metrics = registry
        if getattr(self._inner, "metrics", None) is NULL_METRICS:
            self._inner.metrics = registry

    def __getattr__(self, name: str):
        # Everything not defined here (instrumentation counters, documents,
        # unique_keywords, scheme attributes) belongs to the wrapped server.
        return getattr(self._inner, name)

    # -- the message loop --------------------------------------------------

    def handle(self, message: Message) -> Message:
        """Handle one message, then persist whatever it changed.

        One *outer* message means one flush, so a ``BATCH_REQUEST``
        costs exactly one journal drain and one fsync no matter how many
        keyword entries it carried — the durability half of the batch
        pipeline.  The flush runs even when the handler raises: a batch
        that failed halfway may already have mutated in-memory state, and
        disk must follow memory, not the reply code.
        """
        try:
            return self._inner.handle(message)
        finally:
            self._flush_after(message)

    def _flush_after(self, message: Message) -> None:
        if self._journal is not None:
            if self._journal.dirty:
                upserts, deletes = self._journal.drain()
                self._write_batch(upserts, deletes)
        elif not is_read_request(message):
            self.sync()

    def _write_batch(self, upserts: dict[bytes, bytes],
                     deletes: set[bytes]) -> None:
        flush_started = time.perf_counter()
        stored_upserts = upserts
        stored_deletes = deletes
        if self._prefix:
            stored_upserts = {self._prefix + key: value
                              for key, value in upserts.items()}
            stored_deletes = {self._prefix + key for key in deletes}
        with span("storage.flush", records=len(upserts) + len(deletes)) as sp:
            n_bytes = self._store.apply_batch(stored_upserts, stored_deletes)
            sp.set(bytes=n_bytes)
        self._metrics.histogram("storage_flush_seconds").observe(
            time.perf_counter() - flush_started)
        if self._mirror is not None:
            for key in deletes:
                self._mirror.pop(key, None)
            self._mirror.update(upserts)
        self._metrics.counter("storage_flushes_total").inc()
        self._metrics.counter("storage_records_written_total").inc(
            len(upserts) + len(deletes)
        )
        self._metrics.counter("storage_bytes_written_total").inc(n_bytes)
        self._update_gauges()

    def _update_gauges(self) -> None:
        self._metrics.gauge("storage_live_records").set(len(self._store))
        dead = getattr(self._store, "dead_records", None)
        if dead is not None:
            self._metrics.gauge("storage_dead_records").set(dead)

    # -- maintenance -------------------------------------------------------

    def flush(self) -> None:
        """Persist any pending journal entries now."""
        if self._journal is not None and self._journal.dirty:
            upserts, deletes = self._journal.drain()
            self._write_batch(upserts, deletes)

    def sync(self) -> int:
        """Diff the full snapshot against the store and write the delta.

        The safety net behind :meth:`flush`: correct for any handler,
        including journal-less ones, at the cost of walking the whole
        state.  Returns the number of records written.
        """
        snapshot = dict(self._inner.state_records())
        previous = (self._mirror if self._mirror is not None
                    else self._own_records())
        upserts = {
            key: value for key, value in snapshot.items()
            if previous.get(key) != value
        }
        deletes = {key for key in previous if key not in snapshot}
        if self._journal is not None:
            # The diff supersedes anything the journal buffered.
            self._journal.drain()
        if upserts or deletes:
            self._write_batch(upserts, deletes)
        return len(upserts) + len(deletes)

    @property
    def dead_ratio(self) -> float:
        """Dead records as a fraction of live ones (compaction signal)."""
        live = len(self._store)
        dead = getattr(self._store, "dead_records", 0)
        if not dead:
            return 0.0
        return dead / max(1, live)

    def compact(self) -> None:
        """Reclaim dead log space, if the store supports it."""
        compactor = getattr(self._store, "compact", None)
        if compactor is None:
            return
        compactor()
        self._metrics.counter("storage_compactions_total").inc()
        self._update_gauges()

    def close(self) -> None:
        """Flush pending changes; compact when enough of the log is dead."""
        self.flush()
        if self.dead_ratio >= self.COMPACT_DEAD_RATIO:
            self.compact()

    # -- lifecycle protocol (uniform with TcpSseServer / RouterServer) -----

    def start(self) -> None:
        """No-op: a durable server is live from construction."""

    def stop(self, timeout: float | None = None) -> None:
        """Flush and (maybe) compact — :meth:`close` under the uniform
        ``start()/stop()/stats()`` lifecycle, so routers and servers can
        manage durable and plain handlers identically.  Idempotent."""
        self.close()

    def stats(self) -> dict:
        """Storage-side snapshot: metric registry plus log health."""
        return {
            "metrics": self._metrics.snapshot(),
            "storage": {
                "live_records": len(self._store),
                "dead_records": getattr(self._store, "dead_records", 0),
                "dead_ratio": self.dead_ratio,
            },
        }


def export_client_state(client: SseClient) -> str:
    """Serialize any client's non-key state to a JSON string."""
    return json.dumps(client.export_state(), sort_keys=True)


def restore_client_state(client: SseClient, state_json: str) -> None:
    """Restore a client from :func:`export_client_state` output.

    The client must have been constructed with the same scheme and
    structural parameters (e.g. chain length) as the exporter; mismatches
    raise :class:`~repro.errors.ParameterError`.
    """
    client.import_state(json.loads(state_json))
