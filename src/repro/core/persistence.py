"""Durable Scheme 2 deployments: server state on disk, client state export.

The in-memory servers are ideal for tests and benchmarks; a real outsourced
deployment needs the server to survive restarts and the thin client to
carry its two integers (counter, epoch) between sessions.

* :class:`PersistentScheme2Server` stores every searchable-representation
  segment and every document body in a
  :class:`~repro.storage.kvstore.LogKvStore` (checksummed append-only log
  with crash recovery) and rebuilds its AVL index on open.  The on-disk
  image contains exactly what a curious server could persist: tags,
  encrypted segments, verifiers, ciphertext bodies.
* :func:`export_client_state` / :func:`restore_client_state` round-trip
  the Scheme 2 client's non-key state (counter, epoch, optimization flag)
  as a small JSON blob.  The master key is intentionally NOT included —
  key storage is the caller's problem (a password vault, a smartcard),
  and serializing it casually is how keys leak.
"""

from __future__ import annotations

import json
import os
import struct

from repro.core.scheme1 import Scheme1Server
from repro.core.scheme2 import Scheme2Client, Scheme2Server, _KeywordEntry
from repro.errors import ParameterError, StorageError
from repro.storage.docstore import EncryptedDocumentStore
from repro.storage.kvstore import LogKvStore

__all__ = ["PersistentScheme1Server", "PersistentScheme2Server",
           "export_client_state", "restore_client_state"]

_SEG_PREFIX = b"s2seg:"
_S1_PREFIX = b"s1ent:"


def _segment_key(tag: bytes, index: int) -> bytes:
    return _SEG_PREFIX + struct.pack(">I", index) + tag


def _encode_segment(blob: bytes, verifier: bytes) -> bytes:
    return struct.pack(">I", len(blob)) + blob + verifier


def _decode_segment(value: bytes) -> tuple[bytes, bytes]:
    (blob_len,) = struct.unpack(">I", value[:4])
    return value[4:4 + blob_len], value[4 + blob_len:]


class PersistentScheme2Server(Scheme2Server):
    """Scheme 2 server whose index and documents live in one log file.

    >>> server = PersistentScheme2Server("/tmp/sse.log")  # doctest: +SKIP
    """

    def __init__(self, path: str | os.PathLike, max_walk: int = 1024,
                 cache_plaintext: bool = True) -> None:
        super().__init__(max_walk=max_walk, cache_plaintext=cache_plaintext)
        self._kv = LogKvStore(path)
        self.documents = EncryptedDocumentStore(self._kv)
        self._load_segments()

    def _load_segments(self) -> None:
        """Rebuild the AVL index from persisted segments, in append order."""
        keyed: list[tuple[int, bytes, bytes]] = []
        for key in self._kv.keys():
            if not key.startswith(_SEG_PREFIX):
                continue
            (index,) = struct.unpack(
                ">I", key[len(_SEG_PREFIX):len(_SEG_PREFIX) + 4]
            )
            tag = key[len(_SEG_PREFIX) + 4:]
            value = self._kv.get(key)
            if value is None:  # pragma: no cover - keys() is live
                continue
            keyed.append((index, tag, value))
        for index, tag, value in sorted(keyed, key=lambda t: t[0]):
            entry = self.index.get(tag)
            if entry is None:
                entry = _KeywordEntry()
                self.index.insert(tag, entry)
            if index != len(entry.segments):
                raise StorageError(
                    f"segment log has a gap for tag {tag.hex()} "
                    f"(found {index}, expected {len(entry.segments)})"
                )
            entry.segments.append(_decode_segment(value))

    def _handle_store_entry(self, message):
        """Persist each appended triple before acknowledging."""
        fields = message.fields
        reply = super()._handle_store_entry(message)
        for i in range(0, len(fields), 3):
            tag, blob, verifier = fields[i], fields[i + 1], fields[i + 2]
            entry = self.index.get(tag)
            # The in-memory append already happened; this triple's final
            # position is the segment count minus the triples for the same
            # tag at or after this field position.
            index = len(entry.segments) - sum(
                1 for j in range(i, len(fields), 3) if fields[j] == tag
            )
            self._kv.put(_segment_key(tag, index),
                         _encode_segment(blob, verifier))
        return reply

    def compact(self) -> None:
        """Garbage-collect overwritten records in the backing log."""
        self._kv.compact()


class PersistentScheme1Server(Scheme1Server):
    """Scheme 1 server persisted to one log file.

    Each keyword entry is ``(masked index, F(r))``; both change on every
    update/patch, so the log naturally accumulates dead versions — run
    :meth:`compact` periodically (the CLI exposes it).
    """

    def __init__(self, path: str | os.PathLike, capacity: int,
                 elgamal_modulus_bytes: int) -> None:
        super().__init__(capacity=capacity,
                         elgamal_modulus_bytes=elgamal_modulus_bytes)
        self._kv = LogKvStore(path)
        self.documents = EncryptedDocumentStore(self._kv)
        self._load_entries()

    def _load_entries(self) -> None:
        for key in self._kv.keys():
            if not key.startswith(_S1_PREFIX):
                continue
            tag = key[len(_S1_PREFIX):]
            value = self._kv.get(key)
            if value is None:  # pragma: no cover - keys() is live
                continue
            (masked_len,) = struct.unpack(">I", value[:4])
            masked = value[4:4 + masked_len]
            fr = value[4 + masked_len:]
            self.index.insert(tag, (masked, fr))

    def _persist(self, tag: bytes) -> None:
        masked, fr = self.index.get(tag)
        value = struct.pack(">I", len(masked)) + masked + fr
        self._kv.put(_S1_PREFIX + tag, value)

    def _handle_store_entry(self, message):
        reply = super()._handle_store_entry(message)
        for i in range(0, len(message.fields), 3):
            self._persist(message.fields[i])
        return reply

    def _handle_update_patch(self, message):
        reply = super()._handle_update_patch(message)
        for i in range(0, len(message.fields), 3):
            self._persist(message.fields[i])
        return reply

    def compact(self) -> None:
        """Garbage-collect overwritten records in the backing log."""
        self._kv.compact()


def export_client_state(client: Scheme2Client) -> str:
    """Serialize the client's non-key state to JSON."""
    return json.dumps({
        "format": "repro.scheme2.client/1",
        "ctr": client._ctr,
        "epoch": client._epoch,
        "search_since_update": client._search_since_update,
        "chain_length": client._chain_length,
        "lazy_counter": client._lazy_counter,
    }, sort_keys=True)


def restore_client_state(client: Scheme2Client, state_json: str) -> None:
    """Apply exported state to a freshly constructed client.

    The client must have been constructed with the same master key and
    chain length; mismatches are rejected rather than silently producing
    trapdoors the server cannot use.
    """
    state = json.loads(state_json)
    if state.get("format") != "repro.scheme2.client/1":
        raise ParameterError("unrecognized client state format")
    if state["chain_length"] != client._chain_length:
        raise ParameterError(
            "chain length mismatch between client and saved state"
        )
    client._ctr = int(state["ctr"])
    client._epoch = int(state["epoch"])
    client._search_since_update = bool(state["search_since_update"])
    client._lazy_counter = bool(state["lazy_counter"])
    client._chains.clear()
