"""Core SSE library: the paper's two schemes behind a common API.

Typical use::

    from repro.core import (Document, keygen, make_scheme1, make_scheme2)

    client, server, channel = make_scheme2(keygen())
    client.store([Document(0, b"note", frozenset({"fever"}))])
    result = client.search("fever")
"""

from repro.core.api import SearchResult, SseClient, SseServerHandler
from repro.core.documents import Document, extract_keywords, normalize_keyword
from repro.core.keys import MasterKey, keygen
from repro.core.persistence import (DurableServer, export_client_state,
                                    restore_client_state)
from repro.core.queries import search_all, search_any
from repro.core.registry import (SchemeCapabilities, SchemeHandle,
                                 available_schemes, make_client, make_scheme,
                                 make_server, make_service, register_scheme,
                                 scheme_capabilities, scheme_description)
from repro.core.scheme1 import Scheme1Client, Scheme1Server, group_keywords
from repro.core.scheme2 import (DEFAULT_CHAIN_LENGTH, Scheme2Client,
                                Scheme2Server)
from repro.core.scheme3 import Scheme3Client, Scheme3Server
from repro.core.server import BaseSseServer
from repro.core.updates import HardenedUpdater
from repro.crypto.elgamal import ElGamalKeyPair
from repro.crypto.rng import RandomSource
from repro.net.channel import Channel, NetworkModel

__all__ = [
    "BaseSseServer",
    "DEFAULT_CHAIN_LENGTH",
    "Document",
    "DurableServer",
    "HardenedUpdater",
    "MasterKey",
    "Scheme1Client",
    "Scheme1Server",
    "Scheme2Client",
    "Scheme2Server",
    "Scheme3Client",
    "Scheme3Server",
    "SchemeCapabilities",
    "SchemeHandle",
    "SearchResult",
    "SseClient",
    "SseServerHandler",
    "available_schemes",
    "export_client_state",
    "extract_keywords",
    "group_keywords",
    "keygen",
    "make_client",
    "make_scheme",
    "make_scheme1",
    "make_scheme2",
    "make_server",
    "make_service",
    "normalize_keyword",
    "register_scheme",
    "restore_client_state",
    "scheme_capabilities",
    "scheme_description",
    "search_all",
    "search_any",
]


def make_scheme1(master_key: MasterKey, capacity: int = 1024,
                 keypair: ElGamalKeyPair | None = None,
                 rng: RandomSource | None = None,
                 model: NetworkModel | None = None
                 ) -> tuple[Scheme1Client, Scheme1Server, Channel]:
    """Wire up a Scheme 1 client/server pair over an instrumented channel.

    ``capacity`` is the bit-array width — the largest document id the index
    can ever address.  Pass a pre-generated ``keypair`` in tests/benchmarks
    to skip the (slow) safe-prime generation.
    """
    from repro.crypto.elgamal import generate_keypair

    if keypair is None:
        keypair = generate_keypair(rng=rng)
    server = Scheme1Server(
        capacity=capacity,
        elgamal_modulus_bytes=keypair.public.modulus_bytes,
    )
    channel = Channel(server, model=model)
    client = Scheme1Client(master_key, channel, capacity=capacity,
                           keypair=keypair, rng=rng)
    return client, server, channel


def make_scheme2(master_key: MasterKey,
                 chain_length: int = DEFAULT_CHAIN_LENGTH,
                 lazy_counter: bool = True, cache_plaintext: bool = True,
                 pad_results_to: int | None = None,
                 rng: RandomSource | None = None,
                 model: NetworkModel | None = None
                 ) -> tuple[Scheme2Client, Scheme2Server, Channel]:
    """Wire up a Scheme 2 client/server pair over an instrumented channel.

    ``lazy_counter`` and ``cache_plaintext`` toggle the paper's
    Optimizations 2 and 1 respectively (both on by default, as §5.6
    recommends).  ``pad_results_to`` enables constant-size search replies
    (the frequency-attack countermeasure).
    """
    server = Scheme2Server(max_walk=chain_length,
                           cache_plaintext=cache_plaintext,
                           pad_results_to=pad_results_to)
    channel = Channel(server, model=model)
    client = Scheme2Client(master_key, channel, chain_length=chain_length,
                           lazy_counter=lazy_counter, rng=rng)
    return client, server, channel
