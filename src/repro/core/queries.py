"""Multi-keyword queries over single-keyword SSE (client-side composition).

The paper's schemes answer single-keyword queries; richer boolean queries
compose them on the *client*, which costs one SSE search per distinct term
but leaks only the individual access patterns — the standard trade-off
until dedicated conjunctive schemes.

Both composers ship every distinct term through the client's
:meth:`~repro.core.api.SseClient.search_batch`, so the whole query costs
the scheme's round count ONCE (one batch frame per protocol round), not
once per term.  Result contracts, stable across schemes and releases:

* the result's ``keyword`` label is the normalized distinct terms joined
  with ``" AND "`` / ``" OR "`` in first-seen order;
* ``doc_ids`` are ascending and ``documents`` align with them.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.api import SearchResult, SseClient
from repro.core.documents import normalize_keyword
from repro.errors import ParameterError

__all__ = ["search_all", "search_any"]


def _validated(keywords: Sequence[str]) -> list[str]:
    terms = [normalize_keyword(w) for w in keywords]
    if not terms:
        raise ParameterError("boolean queries need at least one keyword")
    # Deduplicate, preserving order (repeats add bandwidth, never results).
    seen: set[str] = set()
    unique = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            unique.append(term)
    return unique


def _batched_search(client: SseClient,
                    terms: Sequence[str]) -> list[SearchResult]:
    """One search per term, batched when the client supports it.

    Every :class:`SseClient` grows a ``search_batch`` (the base class
    falls back to sequential searches), but duck-typed clients from
    before the batching API get the same sequential fallback here.
    """
    search_batch = getattr(client, "search_batch", None)
    if search_batch is None:
        return [client.search(term) for term in terms]
    return search_batch(terms)


def search_all(client: SseClient, keywords: Sequence[str]) -> SearchResult:
    """Conjunction: documents containing *every* keyword.

    All terms travel in one batched query, so the conjunction costs the
    scheme's per-search round count once regardless of term count.
    """
    terms = _validated(keywords)
    label = " AND ".join(terms)
    surviving: dict[int, bytes] | None = None
    for result in _batched_search(client, terms):
        found = dict(zip(result.doc_ids, result.documents))
        if surviving is None:
            surviving = found
        else:
            surviving = {
                doc_id: body for doc_id, body in surviving.items()
                if doc_id in found
            }
        if not surviving:
            return SearchResult(label, [], [])
    assert surviving is not None
    ids = sorted(surviving)
    return SearchResult(label, ids, [surviving[i] for i in ids])


def search_any(client: SseClient, keywords: Sequence[str]) -> SearchResult:
    """Disjunction: documents containing *any* keyword (deduplicated)."""
    terms = _validated(keywords)
    label = " OR ".join(terms)
    merged: dict[int, bytes] = {}
    for result in _batched_search(client, terms):
        for doc_id, body in zip(result.doc_ids, result.documents):
            merged.setdefault(doc_id, body)
    ids = sorted(merged)
    return SearchResult(label, ids, [merged[i] for i in ids])
