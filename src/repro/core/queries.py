"""Multi-keyword queries over single-keyword SSE (client-side composition).

The paper's schemes answer single-keyword queries; richer boolean queries
compose them on the *client*, which costs one SSE search per distinct term
but leaks only the individual access patterns — the standard trade-off
until dedicated conjunctive schemes.

``search_all`` (conjunction) orders terms so the client can stop early on
an empty intersection; ``search_any`` (disjunction) unions results and
deduplicates bodies.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.api import SearchResult, SseClient
from repro.core.documents import normalize_keyword
from repro.errors import ParameterError

__all__ = ["search_all", "search_any"]


def _validated(keywords: Sequence[str]) -> list[str]:
    terms = [normalize_keyword(w) for w in keywords]
    if not terms:
        raise ParameterError("boolean queries need at least one keyword")
    # Deduplicate, preserving order (repeats add rounds, never results).
    seen: set[str] = set()
    unique = []
    for term in terms:
        if term not in seen:
            seen.add(term)
            unique.append(term)
    return unique


def search_all(client: SseClient, keywords: Sequence[str]) -> SearchResult:
    """Conjunction: documents containing *every* keyword.

    Stops issuing queries as soon as the running intersection is empty, so
    worst-case cost is one search per distinct term and best-case is one.
    """
    terms = _validated(keywords)
    label = " AND ".join(terms)
    surviving: dict[int, bytes] | None = None
    for term in terms:
        result = client.search(term)
        found = dict(zip(result.doc_ids, result.documents))
        if surviving is None:
            surviving = found
        else:
            surviving = {
                doc_id: body for doc_id, body in surviving.items()
                if doc_id in found
            }
        if not surviving:
            return SearchResult(label, [], [])
    assert surviving is not None
    ids = sorted(surviving)
    return SearchResult(label, ids, [surviving[i] for i in ids])


def search_any(client: SseClient, keywords: Sequence[str]) -> SearchResult:
    """Disjunction: documents containing *any* keyword (deduplicated)."""
    terms = _validated(keywords)
    label = " OR ".join(terms)
    merged: dict[int, bytes] = {}
    for term in terms:
        result = client.search(term)
        for doc_id, body in zip(result.doc_ids, result.documents):
            merged.setdefault(doc_id, body)
    ids = sorted(merged)
    return SearchResult(label, ids, [merged[i] for i in ids])
