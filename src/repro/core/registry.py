"""Unified scheme registry: one constructor signature for every scheme.

Before this module each scheme had its own ``make_*`` helper with its own
signature, so every consumer (CLI, benchmarks, examples) hard-coded the
wiring.  Now::

    from repro.core.registry import available_schemes, make_scheme

    client, server = make_scheme("scheme2", seed=7)          # in-process
    client, _ = make_scheme("scheme2", master_key=key,       # remote
                            channel=Channel(transport))

* ``seed`` makes every random choice (keygen, nonces, ElGamal primes)
  deterministic — the same seed on both ends of a socket reconstructs the
  same key material.
* ``channel=None`` builds the server too and wires an in-process
  :class:`~repro.net.channel.Channel`; a provided channel (e.g. over a
  :class:`~repro.net.tcp.TcpClientTransport`) builds only the client and
  returns ``None`` for the server, which lives elsewhere.
* scheme-specific knobs (``capacity``, ``chain_length``,
  ``pad_results_to``, ``dictionary`` …) pass through as keyword options;
  unknown options are rejected loudly.

Adding a scheme is one :func:`register_scheme` call at the bottom of this
module — the CLI (``--scheme``), ``benchmarks/conftest.py``, and any test
parametrizing over :func:`available_schemes` pick it up automatically.
"""

from __future__ import annotations

import os
from typing import Callable, NamedTuple

from repro.core.keys import MasterKey, keygen
from repro.crypto.rng import RandomSource, default_rng
from repro.errors import ParameterError
from repro.net.channel import Channel

__all__ = ["available_schemes", "make_scheme", "make_server",
           "register_scheme", "scheme_description"]

# A small fixed vocabulary so the CM baseline (which structurally needs a
# public dictionary) works out of the box; pass ``dictionary=`` for real use.
_DEMO_DICTIONARY = tuple(
    f"{prefix}:{word}"
    for prefix in ("sym", "cond", "med", "proc")
    for word in ("fever", "flu", "cough", "rash", "aspirin", "checkup",
                 "xray", "vaccination")
)


class _SchemeSpec(NamedTuple):
    build: Callable
    description: str


_REGISTRY: dict[str, _SchemeSpec] = {}


def register_scheme(name: str, build: Callable, description: str) -> None:
    """Register *build(master_key, channel, rng, options) -> (client, server)*.

    ``channel`` is ``None`` when the builder must create the server and an
    in-process channel itself; otherwise the builder constructs only the
    client against the given channel and returns ``None`` for the server.
    Builders must ``pop`` the options they understand and raise
    :class:`ParameterError` on leftovers (use :func:`_reject_unknown`).
    """
    _REGISTRY[name] = _SchemeSpec(build, description)


def available_schemes() -> tuple[str, ...]:
    """Registered scheme names, sorted."""
    return tuple(sorted(_REGISTRY))


def scheme_description(name: str) -> str:
    """One-line description of a registered scheme."""
    return _lookup(name).description


def _lookup(name: str) -> _SchemeSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(available_schemes())
        raise ParameterError(f"unknown scheme {name!r} (known: {known})")
    return spec


def _reject_unknown(name: str, options: dict) -> None:
    if options:
        raise ParameterError(
            f"scheme {name!r} does not accept option(s): "
            + ", ".join(sorted(options))
        )


def make_scheme(name: str, master_key: MasterKey | None = None, *,
                channel: Channel | None = None,
                seed: int | bytes | None = None,
                rng: RandomSource | None = None,
                **options):
    """Build ``(client, server)`` for any registered scheme.

    With ``channel=None`` the server is in-process and reachable through
    ``client.channel``; with a caller-supplied channel (wrapping a TCP
    transport, usually) the returned server is ``None``.  ``seed`` derives
    both the RNG and, if absent, the master key deterministically.
    """
    spec = _lookup(name)
    if rng is None:
        rng = default_rng(seed)
    elif seed is not None:
        raise ParameterError("pass either seed or rng, not both")
    if master_key is None:
        master_key = keygen(rng=rng)
    return spec.build(master_key, channel, rng, dict(options))


def make_server(name: str, *, seed: int | bytes | None = None,
                data_dir: str | os.PathLike | None = None, **options):
    """Build only the server handler (for serving over TCP).

    The client connecting to it must be built with the same structural
    options (and, for scheme 1, the same seed/keypair).

    With ``data_dir`` the handler comes wrapped in a
    :class:`~repro.core.persistence.DurableServer` over a
    :class:`~repro.storage.kvstore.LogKvStore` at
    ``<data_dir>/server.log`` — any scheme, write-through, recovered on
    reopen.  The directory is created if missing.
    """
    _, server = make_scheme(name, channel=None, seed=seed, **options)
    if data_dir is None:
        return server
    from repro.core.persistence import DurableServer
    from repro.storage.kvstore import LogKvStore

    data_dir = os.fspath(data_dir)
    os.makedirs(data_dir, exist_ok=True)
    store = LogKvStore(os.path.join(data_dir, "server.log"))
    return DurableServer(server, store)


# -- builders ---------------------------------------------------------------


def _build_scheme1(master_key, channel, rng, options):
    from repro.core.scheme1 import Scheme1Client, Scheme1Server
    from repro.crypto.elgamal import generate_keypair

    capacity = options.pop("capacity", 1024)
    keypair = options.pop("keypair", None)
    decrypt_bodies = options.pop("decrypt_bodies", True)
    _reject_unknown("scheme1", options)
    if keypair is None:
        keypair = generate_keypair(rng=rng)
    server = None
    if channel is None:
        server = Scheme1Server(
            capacity=capacity,
            elgamal_modulus_bytes=keypair.public.modulus_bytes,
        )
        channel = Channel(server)
    client = Scheme1Client(master_key, channel, capacity=capacity,
                           keypair=keypair, rng=rng,
                           decrypt_bodies=decrypt_bodies)
    return client, server


def _build_scheme2(master_key, channel, rng, options):
    from repro.core.scheme2 import (DEFAULT_CHAIN_LENGTH, Scheme2Client,
                                    Scheme2Server)

    chain_length = options.pop("chain_length", DEFAULT_CHAIN_LENGTH)
    lazy_counter = options.pop("lazy_counter", True)
    cache_plaintext = options.pop("cache_plaintext", True)
    pad_results_to = options.pop("pad_results_to", None)
    decrypt_bodies = options.pop("decrypt_bodies", True)
    _reject_unknown("scheme2", options)
    server = None
    if channel is None:
        server = Scheme2Server(max_walk=chain_length,
                               cache_plaintext=cache_plaintext,
                               pad_results_to=pad_results_to)
        channel = Channel(server)
    client = Scheme2Client(master_key, channel, chain_length=chain_length,
                           lazy_counter=lazy_counter, rng=rng,
                           decrypt_bodies=decrypt_bodies)
    return client, server


def _build_swp(master_key, channel, rng, options):
    from repro.baselines.swp import SwpClient, SwpServer

    _reject_unknown("swp", options)
    server = None
    if channel is None:
        server = SwpServer()
        channel = Channel(server)
    return SwpClient(master_key, channel, rng=rng), server


def _build_goh(master_key, channel, rng, options):
    from repro.baselines.goh import DEFAULT_FP_RATE, GohClient, GohServer
    from repro.ds.bloom import optimal_parameters

    expected = options.pop("expected_keywords_per_doc", 64)
    fp_rate = options.pop("false_positive_rate", DEFAULT_FP_RATE)
    blind = options.pop("blind", True)
    _reject_unknown("goh", options)
    server = None
    if channel is None:
        bits, hashes = optimal_parameters(expected, fp_rate)
        server = GohServer(bloom_bits=bits, bloom_hashes=hashes)
        channel = Channel(server)
    client = GohClient(master_key, channel,
                       expected_keywords_per_doc=expected,
                       false_positive_rate=fp_rate, blind=blind, rng=rng)
    return client, server


def _build_cgko(master_key, channel, rng, options):
    from repro.baselines.cgko import CgkoClient, CgkoServer

    padding_factor = options.pop("padding_factor", 1.25)
    _reject_unknown("cgko", options)
    server = None
    if channel is None:
        server = CgkoServer()
        channel = Channel(server)
    client = CgkoClient(master_key, channel,
                        padding_factor=padding_factor, rng=rng)
    return client, server


def _build_cm(master_key, channel, rng, options):
    from repro.baselines.chang_mitzenmacher import CmClient, CmServer

    dictionary = options.pop("dictionary", _DEMO_DICTIONARY)
    _reject_unknown("cm", options)
    server = None
    if channel is None:
        server = CmServer(dictionary_size=len(dictionary))
        channel = Channel(server)
    return CmClient(master_key, channel, dictionary=dictionary,
                    rng=rng), server


def _build_naive(master_key, channel, rng, options):
    from repro.baselines.naive import NaiveClient, NaiveServer

    _reject_unknown("naive", options)
    server = None
    if channel is None:
        server = NaiveServer()
        channel = Channel(server)
    return NaiveClient(master_key, channel, rng=rng), server


register_scheme("scheme1", _build_scheme1,
                "paper §5.2: O(log u) search, 2 rounds, XOR-patch updates")
register_scheme("scheme2", _build_scheme2,
                "paper §5.4: 1-round search, delta-sized chain updates")
register_scheme("swp", _build_swp,
                "Song–Wagner–Perrig sequential scan baseline")
register_scheme("goh", _build_goh,
                "Goh Z-IDX per-document Bloom filter baseline")
register_scheme("cgko", _build_cgko,
                "Curtmola et al. inverted-index baseline")
register_scheme("cm", _build_cm,
                "Chang–Mitzenmacher fixed-dictionary baseline")
register_scheme("naive", _build_naive,
                "download-everything strawman baseline")
