"""Unified scheme registry: the topology layer for every scheme.

Before this module each scheme had its own ``make_*`` helper with its own
signature, so every consumer (CLI, benchmarks, examples) hard-coded the
wiring.  The registry exposes one constructor per *topology* instead::

    from repro.core.registry import make_client, make_scheme, make_service

    # in-process pair (tests, examples)
    handle = make_scheme("scheme2", seed=7)
    handle.client.search("flu"); handle.server.unique_keywords

    # client only, against a remote server
    client = make_client("scheme2", key, channel=Channel(transport), seed=7)

    # server only (serve it over TCP); durable with data_dir
    server = make_server("scheme2", seed=7, data_dir="/var/lib/sse")

    # sharded scatter-gather deployment: N servers + a router
    with make_service("scheme2", shards=4, seed=7) as service:
        transport = TcpClientTransport(*service.addr)

* ``seed`` makes every random choice (keygen, nonces, ElGamal primes)
  deterministic — the same seed on both ends of a socket (or on every
  shard of a service) reconstructs the same key material.
* :func:`make_scheme` returns a :class:`SchemeHandle` — sequence-
  compatible, so existing ``client, server = make_scheme(...)``
  unpacking keeps working; ``tenant=`` / ``tenants=`` keywords scope any
  constructor to a tenant key domain (see ``docs/multitenancy.md``).
* scheme-specific knobs (``capacity``, ``chain_length``,
  ``pad_results_to``, ``dictionary`` …) pass through as keyword options;
  unknown options are rejected loudly — and identically — by every
  constructor, with the valid options named in the error.

Every registration also declares a :class:`SchemeCapabilities` descriptor
— the machine-readable contract the generic layers consume instead of
hand-maintained per-scheme tables: shard routing deviations
(:func:`repro.net.shard.routes_for_scheme`), durable-state namespaces,
batch-amortization and removal support (the conformance matrix in
``tests/core/test_conformance.py``), and the structural options the
parametrized suites construct each scheme with.  ``repro-lint``'s
``protocol-exhaustive`` checker fails any :func:`register_scheme` call
that omits the descriptor.

Adding a scheme is one :func:`register_scheme` call at the bottom of this
module — the CLI (``--scheme``), ``benchmarks/conftest.py``, and any test
parametrizing over :func:`available_schemes` pick it up automatically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Mapping, NamedTuple

from repro.core.keys import MasterKey, keygen
from repro.crypto.rng import RandomSource, default_rng
from repro.errors import ParameterError
from repro.net.channel import Channel
from repro.net.messages import MessageType
from repro.net.shard import RouteKind

__all__ = ["SchemeCapabilities", "SchemeHandle", "available_schemes",
           "make_client", "make_scheme", "make_server", "make_service",
           "register_scheme", "scheme_capabilities", "scheme_description"]

# A small fixed vocabulary so the CM baseline (which structurally needs a
# public dictionary) works out of the box; pass ``dictionary=`` for real use.
_DEMO_DICTIONARY = tuple(
    f"{prefix}:{word}"
    for prefix in ("sym", "cond", "med", "proc")
    for word in ("fever", "flu", "cough", "rash", "aspirin", "checkup",
                 "xray", "vaccination")
)


@dataclass(frozen=True)
class SchemeCapabilities:
    """Machine-readable per-scheme contract for the generic layers.

    One declaration here replaces a per-layer special case: the shard
    router reads ``route_overrides``, the durable layer and snapshot
    tests read ``state_prefixes``, the conformance matrix reads
    ``batched_updates`` / ``supports_removal`` / ``test_options`` /
    ``needs_keypair``, and the leakage benchmarks read
    ``forward_private``.
    """

    #: What mutable client state updates maintain (documentation string,
    #: e.g. ``"global counter"`` or ``"per-keyword counters"``).
    update_state: str
    #: Updates are unlinkable to keywords and past search tokens.
    forward_private: bool = False
    #: Bulk calls amortize crypto into single ``BATCH_REQUEST`` frames.
    batched_updates: bool = False
    #: ``remove_documents`` is implemented (not the ABC default raise).
    supports_removal: bool = False
    #: Deviations from :data:`repro.net.shard.BASE_ROUTES` — structural
    #: exceptions only (e.g. CGKO's wholesale index re-upload).
    route_overrides: Mapping[MessageType, RouteKind] = \
        field(default_factory=dict)
    #: Durable-state key namespaces this scheme's server owns, beyond the
    #: shared ``doc:`` (see :mod:`repro.core.state`).
    state_prefixes: tuple[bytes, ...] = ()
    #: Scheme 1 only: the parametrized suites must inject a shared
    #: ElGamal keypair so client and server moduli match.
    needs_keypair: bool = False
    #: Smallest structurally-valid options for fast parametrized tests.
    test_options: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SchemeHandle:
    """What :func:`make_scheme` builds: a client and its in-process server.

    Sequence-compatible with the named tuple it used to be, so both
    styles keep working::

        handle = make_scheme("scheme2", seed=7)
        handle.client.search("flu")

        client, server = make_scheme("scheme2", seed=7)  # legacy unpack

    ``tenant`` records which tenant's key domain the pair was built in
    (via the ``tenant=`` keyword); ``None`` outside multi-tenant use.
    It deliberately does not participate in unpacking.
    """

    client: object
    server: object
    tenant: str | None = None

    def __iter__(self):
        return iter((self.client, self.server))

    def __getitem__(self, index):
        return (self.client, self.server)[index]

    def __len__(self) -> int:
        return 2


class _SchemeSpec(NamedTuple):
    build: Callable
    description: str
    options: tuple[str, ...]
    capabilities: SchemeCapabilities


_REGISTRY: dict[str, _SchemeSpec] = {}


def register_scheme(name: str, build: Callable, description: str,
                    options: tuple[str, ...] = (), *,
                    capabilities: SchemeCapabilities) -> None:
    """Register *build(master_key, channel, rng, options) -> (client, server)*.

    ``channel`` is ``None`` when the builder must create the server and an
    in-process channel itself; otherwise the builder constructs only the
    client against the given channel and returns ``None`` for the server.
    Builders must ``pop`` the options they understand and raise
    :class:`ParameterError` on leftovers (use :func:`_reject_unknown`).
    *options* declares the accepted option names — it makes rejection
    errors name the valid choices and lets :func:`make_service` validate
    *before* spawning shard processes.  *capabilities* is the scheme's
    :class:`SchemeCapabilities` descriptor; the ``protocol-exhaustive``
    checker fails registrations that omit it.
    """
    _REGISTRY[name] = _SchemeSpec(build, description, tuple(options),
                                  capabilities)


def available_schemes() -> tuple[str, ...]:
    """Registered scheme names, sorted."""
    return tuple(sorted(_REGISTRY))


def scheme_description(name: str) -> str:
    """One-line description of a registered scheme."""
    return _lookup(name).description


def scheme_capabilities(name: str) -> SchemeCapabilities:
    """The :class:`SchemeCapabilities` descriptor of a registered scheme."""
    return _lookup(name).capabilities


def _lookup(name: str) -> _SchemeSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        known = ", ".join(available_schemes())
        raise ParameterError(f"unknown scheme {name!r} (known: {known})")
    return spec


def _reject_unknown(name: str, options: dict) -> None:
    """Fail loudly on leftover options, naming the valid ones.

    Every construction path — :func:`make_scheme`, :func:`make_client`,
    :func:`make_server`, :func:`make_service` — funnels unknown-option
    rejection through here, so the error is identical everywhere.
    """
    if not options:
        return
    spec = _REGISTRY.get(name)
    valid = ", ".join(spec.options) if spec is not None and spec.options \
        else "none"
    raise ParameterError(
        f"scheme {name!r} does not accept option(s): "
        + ", ".join(sorted(options))
        + f" (valid options: {valid})"
    )


def _check_options(name: str, options: dict) -> None:
    """Eagerly reject unknown options against the registered declaration."""
    spec = _lookup(name)
    unknown = {key: options[key] for key in options
               if key not in spec.options}
    _reject_unknown(name, unknown)


def _resolve_tenant(tenant, master_key: MasterKey | None
                    ) -> tuple[str | None, MasterKey | None]:
    """Normalize the ``tenant=`` keyword into (tenant id, master key).

    Accepts a tenant id string or a :class:`~repro.tenancy.Tenant`
    binding; a binding also supplies the tenant's HKDF-derived master
    key when the caller did not pass one explicitly.
    """
    if tenant is None:
        return None, master_key
    from repro.tenancy import Tenant, validate_tenant_id

    if isinstance(tenant, Tenant):
        if master_key is None:
            master_key = tenant.master_key
        return tenant.tenant_id, master_key
    return validate_tenant_id(tenant), master_key


def make_scheme(name: str, master_key: MasterKey | None = None, *,
                seed: int | bytes | None = None,
                rng: RandomSource | None = None,
                tenant=None, **options) -> SchemeHandle:
    """Build a :class:`SchemeHandle` (client + in-process server).

    ``seed`` derives both the RNG and, if absent, the master key
    deterministically.  ``tenant`` (an id string or a
    :class:`~repro.tenancy.Tenant` binding) stamps the handle with the
    tenant the pair belongs to; a binding also derives the tenant's
    master key.  For a client against a remote server, call
    :func:`make_client`.
    """
    spec = _lookup(name)
    if rng is None:
        rng = default_rng(seed)
    elif seed is not None:
        raise ParameterError("pass either seed or rng, not both")
    tenant_id, master_key = _resolve_tenant(tenant, master_key)
    if master_key is None:
        master_key = keygen(rng=rng)
    client, server = spec.build(master_key, None, rng, dict(options))
    return SchemeHandle(client, server, tenant=tenant_id)


def make_client(name: str, master_key: MasterKey | None = None, *,
                channel: Channel,
                seed: int | bytes | None = None,
                rng: RandomSource | None = None,
                tenant=None, **options):
    """Build only the client, against a caller-supplied channel.

    The channel usually wraps a :class:`~repro.net.tcp.TcpClientTransport`
    pointed at a served :func:`make_server` handler or a
    :func:`make_service` router.  Structural options (and, for scheme 1,
    the seed or keypair) must match the server side.

    Passing ``tenant=`` as a :class:`~repro.tenancy.Tenant` binding
    derives the tenant's master key; the caller still performs the
    session handshake (``client.open(tenant_id, token)``) — building a
    client never talks to the server.
    """
    if channel is None:
        raise ParameterError("make_client requires a channel; use "
                             "make_scheme for an in-process pair")
    spec = _lookup(name)
    if rng is None:
        rng = default_rng(seed)
    elif seed is not None:
        raise ParameterError("pass either seed or rng, not both")
    _, master_key = _resolve_tenant(tenant, master_key)
    if master_key is None:
        master_key = keygen(rng=rng)
    client, _ = spec.build(master_key, channel, rng, dict(options))
    return client


def make_server(name: str, *, seed: int | bytes | None = None,
                data_dir: str | os.PathLike | None = None,
                tenants=None, **options):
    """Build only the server handler (for serving over TCP).

    The client connecting to it must be built with the same structural
    options (and, for scheme 1, the same seed/keypair).

    With ``data_dir`` the handler comes wrapped in a
    :class:`~repro.core.persistence.DurableServer` over a
    :class:`~repro.storage.kvstore.LogKvStore` at
    ``<data_dir>/server.log`` — any scheme, write-through, recovered on
    reopen.  The directory is created if missing.

    With ``tenants`` (a :class:`~repro.tenancy.TenantDirectory` or its
    ``to_config()`` dict) the handler is a
    :class:`~repro.tenancy.TenantGateway`: one backend per tenant, each
    journaling under its own ``t:<id>:`` prefix in ONE shared log, with
    ``SESSION_OPEN`` authentication and per-tenant quota admission.
    Clients that skip the handshake map to the default tenant for one
    release (with a ``DeprecationWarning``).
    """
    _check_options(name, options)
    if tenants is not None:
        return _make_tenant_gateway(name, tenants, seed=seed,
                                    data_dir=data_dir, options=options)
    _, server = make_scheme(name, seed=seed, **options)
    if data_dir is None:
        return server
    from repro.core.persistence import DurableServer
    from repro.storage.kvstore import LogKvStore

    data_dir = os.fspath(data_dir)
    os.makedirs(data_dir, exist_ok=True)
    store = LogKvStore(os.path.join(data_dir, "server.log"))
    return DurableServer(server, store)


def _make_tenant_gateway(name: str, tenants, *, seed, data_dir, options):
    """A :class:`~repro.tenancy.TenantGateway` over per-tenant backends.

    Durable deployments share ONE ``LogKvStore`` across all tenants —
    each backend's :class:`~repro.core.persistence.DurableServer` writes
    under the tenant's ``t:<id>:`` key prefix and recovers only its own
    slice, so the journal/snapshot never mixes tenants.
    """
    from repro.tenancy import (TenantDirectory, TenantGateway,
                               tenant_state_prefix)

    directory = tenants if isinstance(tenants, TenantDirectory) \
        else TenantDirectory.from_config(tenants)
    store = None
    if data_dir is not None:
        from repro.storage.kvstore import LogKvStore

        data_dir = os.fspath(data_dir)
        os.makedirs(data_dir, exist_ok=True)
        store = LogKvStore(os.path.join(data_dir, "server.log"))

    def build_backend(tenant_id: str):
        _, server = make_scheme(name, seed=seed, **options)
        if store is None:
            return server
        from repro.core.persistence import DurableServer

        return DurableServer(server, store,
                             key_prefix=tenant_state_prefix(tenant_id))

    return TenantGateway(directory, build_backend)


def make_service(name: str, *, shards: int = 2,
                 data_dir: str | os.PathLike | None = None,
                 seed: int | bytes | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 shard_mode: str = "process", workers: int | None = None,
                 metrics=None, tracer=None, trace_shards: bool = False,
                 tenants=None, **options):
    """Start a sharded deployment: *shards* servers behind one router.

    Returns a running :class:`~repro.net.shard.Service` — a typed handle
    with ``addr`` (the router, where clients connect), per-shard
    ``addresses``, aggregated ``stats()``, and ``stop()`` (also a context
    manager).  The keyword-tag space is partitioned across the shards by
    consistent hashing; each shard is a full scheme server, durable under
    ``<data_dir>/shard-<i>/`` when *data_dir* is given, running in its
    own process (``shard_mode="process"``, the default — own fsync path)
    or its own thread (``"thread"``, for tests).

    Every shard is built with the same *seed*, so scheme 1 needs either a
    seed or an explicit ``keypair`` option for its ElGamal modulus to
    match across the partition.  Unknown options are rejected here,
    before any process spawns, with the same error :func:`make_scheme`
    raises.

    ``tenants`` (a :class:`~repro.tenancy.TenantDirectory` or its config
    dict) makes the whole service tenant-aware: the router answers the
    ``SESSION_OPEN`` handshake and admits per-tenant rate quotas; every
    shard runs a :class:`~repro.tenancy.TenantGateway` keeping tenant
    state disjoint.
    """
    _check_options(name, options)
    from repro.net.shard import start_service

    return start_service(name, shards=shards, data_dir=data_dir, seed=seed,
                         host=host, port=port, shard_mode=shard_mode,
                         workers=workers, metrics=metrics, tracer=tracer,
                         trace_shards=trace_shards, tenants=tenants,
                         options=options)


# -- builders ---------------------------------------------------------------


def _build_scheme1(master_key, channel, rng, options):
    from repro.core.scheme1 import Scheme1Client, Scheme1Server
    from repro.crypto.elgamal import generate_keypair

    capacity = options.pop("capacity", 1024)
    keypair = options.pop("keypair", None)
    decrypt_bodies = options.pop("decrypt_bodies", True)
    _reject_unknown("scheme1", options)
    if keypair is None:
        keypair = generate_keypair(rng=rng)
    server = None
    if channel is None:
        server = Scheme1Server(
            capacity=capacity,
            elgamal_modulus_bytes=keypair.public.modulus_bytes,
        )
        channel = Channel(server)
    client = Scheme1Client(master_key, channel, capacity=capacity,
                           keypair=keypair, rng=rng,
                           decrypt_bodies=decrypt_bodies)
    return client, server


def _build_scheme2(master_key, channel, rng, options):
    from repro.core.scheme2 import (DEFAULT_CHAIN_LENGTH, Scheme2Client,
                                    Scheme2Server)

    chain_length = options.pop("chain_length", DEFAULT_CHAIN_LENGTH)
    lazy_counter = options.pop("lazy_counter", True)
    cache_plaintext = options.pop("cache_plaintext", True)
    pad_results_to = options.pop("pad_results_to", None)
    decrypt_bodies = options.pop("decrypt_bodies", True)
    _reject_unknown("scheme2", options)
    server = None
    if channel is None:
        server = Scheme2Server(max_walk=chain_length,
                               cache_plaintext=cache_plaintext,
                               pad_results_to=pad_results_to)
        channel = Channel(server)
    client = Scheme2Client(master_key, channel, chain_length=chain_length,
                           lazy_counter=lazy_counter, rng=rng,
                           decrypt_bodies=decrypt_bodies)
    return client, server


def _build_scheme3(master_key, channel, rng, options):
    from repro.core.scheme3 import (DEFAULT_CHAIN_LENGTH, Scheme3Client,
                                    Scheme3Server)

    chain_length = options.pop("chain_length", DEFAULT_CHAIN_LENGTH)
    decrypt_bodies = options.pop("decrypt_bodies", True)
    _reject_unknown("scheme3-fp", options)
    server = None
    if channel is None:
        server = Scheme3Server(max_walk=chain_length)
        channel = Channel(server)
    client = Scheme3Client(master_key, channel, chain_length=chain_length,
                           rng=rng, decrypt_bodies=decrypt_bodies)
    return client, server


def _build_swp(master_key, channel, rng, options):
    from repro.baselines.swp import SwpClient, SwpServer

    _reject_unknown("swp", options)
    server = None
    if channel is None:
        server = SwpServer()
        channel = Channel(server)
    return SwpClient(master_key, channel, rng=rng), server


def _build_goh(master_key, channel, rng, options):
    from repro.baselines.goh import DEFAULT_FP_RATE, GohClient, GohServer
    from repro.ds.bloom import optimal_parameters

    expected = options.pop("expected_keywords_per_doc", 64)
    fp_rate = options.pop("false_positive_rate", DEFAULT_FP_RATE)
    blind = options.pop("blind", True)
    _reject_unknown("goh", options)
    server = None
    if channel is None:
        bits, hashes = optimal_parameters(expected, fp_rate)
        server = GohServer(bloom_bits=bits, bloom_hashes=hashes)
        channel = Channel(server)
    client = GohClient(master_key, channel,
                       expected_keywords_per_doc=expected,
                       false_positive_rate=fp_rate, blind=blind, rng=rng)
    return client, server


def _build_cgko(master_key, channel, rng, options):
    from repro.baselines.cgko import CgkoClient, CgkoServer

    padding_factor = options.pop("padding_factor", 1.25)
    _reject_unknown("cgko", options)
    server = None
    if channel is None:
        server = CgkoServer()
        channel = Channel(server)
    client = CgkoClient(master_key, channel,
                        padding_factor=padding_factor, rng=rng)
    return client, server


def _build_cm(master_key, channel, rng, options):
    from repro.baselines.chang_mitzenmacher import CmClient, CmServer

    dictionary = options.pop("dictionary", _DEMO_DICTIONARY)
    _reject_unknown("cm", options)
    server = None
    if channel is None:
        server = CmServer(dictionary_size=len(dictionary))
        channel = Channel(server)
    return CmClient(master_key, channel, dictionary=dictionary,
                    rng=rng), server


def _build_naive(master_key, channel, rng, options):
    from repro.baselines.naive import NaiveClient, NaiveServer

    _reject_unknown("naive", options)
    server = None
    if channel is None:
        server = NaiveServer()
        channel = Channel(server)
    return NaiveClient(master_key, channel, rng=rng), server


register_scheme("scheme1", _build_scheme1,
                "paper §5.2: O(log u) search, 2 rounds, XOR-patch updates",
                options=("capacity", "keypair", "decrypt_bodies"),
                capabilities=SchemeCapabilities(
                    update_state="per-tag masked arrays + nonces",
                    batched_updates=True,
                    supports_removal=True,
                    state_prefixes=(b"s1:",),
                    needs_keypair=True,
                    test_options={"capacity": 32},
                ))
register_scheme("scheme2", _build_scheme2,
                "paper §5.4: 1-round search, delta-sized chain updates",
                options=("chain_length", "lazy_counter", "cache_plaintext",
                         "pad_results_to", "decrypt_bodies"),
                capabilities=SchemeCapabilities(
                    update_state="global update counter",
                    batched_updates=True,
                    supports_removal=True,
                    state_prefixes=(b"s2:",),
                    test_options={"chain_length": 64},
                ))
register_scheme("scheme3-fp", _build_scheme3,
                "forward-private updates: fresh per-update keys, "
                "epoch-unroll search",
                options=("chain_length", "decrypt_bodies"),
                capabilities=SchemeCapabilities(
                    update_state="per-keyword update counters",
                    forward_private=True,
                    batched_updates=True,
                    supports_removal=True,
                    state_prefixes=(b"s3:", b"s3f:"),
                    test_options={"chain_length": 64},
                ))
register_scheme("swp", _build_swp,
                "Song–Wagner–Perrig sequential scan baseline",
                capabilities=SchemeCapabilities(
                    update_state="none (append-only uploads)",
                    state_prefixes=(b"swp:",),
                ))
register_scheme("goh", _build_goh,
                "Goh Z-IDX per-document Bloom filter baseline",
                options=("expected_keywords_per_doc", "false_positive_rate",
                         "blind"),
                capabilities=SchemeCapabilities(
                    update_state="none (per-document filters)",
                    state_prefixes=(b"goh:",),
                ))
register_scheme("cgko", _build_cgko,
                "Curtmola et al. inverted-index baseline",
                options=("padding_factor",),
                capabilities=SchemeCapabilities(
                    update_state="client-side plaintext index, full rebuild",
                    batched_updates=True,
                    # CGKO's "index upload" reuses S1_STORE_ENTRY as a
                    # wholesale replacement of an addr-keyed node array
                    # whose linked lists straddle addresses —
                    # unsplittable, so every shard keeps the full index
                    # (searches then PIN to spread read load).
                    route_overrides={
                        MessageType.S1_STORE_ENTRY: RouteKind.BROADCAST,
                    },
                    state_prefixes=(b"cgko.a:", b"cgko.t:"),
                ))
register_scheme("cm", _build_cm,
                "Chang–Mitzenmacher fixed-dictionary baseline",
                options=("dictionary",),
                capabilities=SchemeCapabilities(
                    update_state="none (fixed dictionary, masked rows)",
                    state_prefixes=(b"cm:",),
                ))
register_scheme("naive", _build_naive,
                "download-everything strawman baseline",
                capabilities=SchemeCapabilities(
                    update_state="none (re-upload everything)",
                ))
