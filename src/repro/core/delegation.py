"""Capability separation: search-only delegates (extension to the paper).

The master key bundles two capabilities: ``k_w`` drives trapdoors
(search), ``k_m`` decrypts document bodies (read).  The §6 scenarios
implicitly need them separated — a journalist checking a vaccination
should be able to *test* for a keyword without reading whole records.

Recipe:

1. The record owner calls :func:`delegate_master_key` — the true ``k_w``
   paired with a throwaway ``k_m`` — and hands the delegate that key (for
   Scheme 1, plus the ElGamal keypair, which is part of the search path).
2. The delegate builds an ordinary scheme client with
   ``decrypt_bodies=False`` and wraps it in :class:`SearchDelegate`.

The delegate's searches are real protocol runs returning matching *ids*;
body ciphertexts are never decrypted — and could not be, since the
delegate's ``k_m`` is random.  Tests verify that a delegate who cheats
(flips ``decrypt_bodies`` back on) gets authentication failures, not data.
"""

from __future__ import annotations

from repro.core.keys import MasterKey
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import ParameterError

__all__ = ["delegate_master_key", "SearchDelegate"]


def delegate_master_key(master_key: MasterKey,
                        rng: RandomSource | None = None) -> MasterKey:
    """Derive a search-only key: real k_w, random (useless) k_m."""
    rng = rng if rng is not None else SystemRandomSource()
    return MasterKey(k_m=rng.random_bytes(len(master_key.k_m)),
                     k_w=master_key.k_w)


class SearchDelegate:
    """Search capability without read capability."""

    def __init__(self, sse_client) -> None:
        if getattr(sse_client, "_decrypt_bodies", True):
            raise ParameterError(
                "delegates must wrap a client built with "
                "decrypt_bodies=False"
            )
        self._client = sse_client

    def matching_ids(self, keyword: str) -> list[int]:
        """Ids of matching documents; bodies remain opaque ciphertext."""
        return self._client.search(keyword).doc_ids

    def count(self, keyword: str) -> int:
        """Number of matching documents (the §6 audit primitive)."""
        return len(self.matching_ids(keyword))

    def exists(self, keyword: str) -> bool:
        """True iff at least one document carries the keyword."""
        return self.count(keyword) > 0
