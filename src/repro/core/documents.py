"""Document model: D = (M, W) with client-assigned identifiers (paper §3).

A document couples an opaque data item ``M`` (bytes) with a metadata item
``W`` — a *set* of keywords.  Keyword normalization (case folding, token
cleanup) lives here so that every scheme and baseline indexes identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = ["Document", "normalize_keyword", "extract_keywords"]

_TOKEN_RE = re.compile(r"[a-z0-9][a-z0-9_\-]*")


def normalize_keyword(keyword: str) -> str:
    """Canonicalize a keyword: lowercase, stripped; must be non-empty."""
    normalized = keyword.strip().lower()
    if not normalized:
        raise ParameterError("keywords must be non-empty")
    return normalized


def extract_keywords(text: str) -> set[str]:
    """Tokenize free text into a keyword set (for examples and PHR corpus)."""
    return set(_TOKEN_RE.findall(text.lower()))


@dataclass(frozen=True)
class Document:
    """An identified document: id, data item M, keyword set W.

    >>> doc = Document(doc_id=7, data=b"note", keywords={"Fever", "flu"})
    >>> sorted(doc.keywords)
    ['fever', 'flu']
    """

    doc_id: int
    data: bytes
    keywords: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise ParameterError("document ids must be non-negative")
        if not isinstance(self.data, bytes):
            raise ParameterError("document data must be bytes")
        normalized = frozenset(normalize_keyword(w) for w in self.keywords)
        object.__setattr__(self, "keywords", normalized)

    @classmethod
    def from_text(cls, doc_id: int, text: str,
                  extra_keywords: set[str] | None = None) -> "Document":
        """Build a document whose keywords are extracted from its text."""
        keywords = extract_keywords(text)
        if extra_keywords:
            keywords |= {normalize_keyword(w) for w in extra_keywords}
        return cls(doc_id=doc_id, data=text.encode("utf-8"),
                   keywords=frozenset(keywords))

    @property
    def size(self) -> int:
        """Length of the data item in bytes (leaked by every SSE scheme)."""
        return len(self.data)
