"""Update hardening policies (paper §5.7) as a composable client wrapper.

The paper proposes two mitigations for update leakage:

* **Batched updates** — accumulate documents and flush them together, so a
  keyword in the batch could belong to any of its documents;
* **Fake updates** — pad every flush to a fixed keyword multiset, so the
  server sees constant-size updates touching a constant keyword universe.

:class:`HardenedUpdater` layers both policies over any
:class:`~repro.core.api.SseClient`.  Documents queue locally until the
batch threshold (or an explicit flush); each flush optionally pads with
fake updates to a declared keyword universe.  Searches flush first so
results are never stale.

Note the trust model: the queue lives on the *client*, which already holds
the master key, so queuing costs no security — only durability until the
next flush (exactly the trade-off batching always makes).
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.core.api import SearchResult, SseClient
from repro.core.documents import Document, normalize_keyword
from repro.core.scheme2 import Scheme2Client
from repro.errors import ParameterError

__all__ = ["HardenedUpdater"]


class HardenedUpdater:
    """Batching + padding front-end for an SSE client.

    >>> from repro.core import keygen, make_scheme2
    >>> client, _, _ = make_scheme2(keygen())
    >>> updater = HardenedUpdater(client, batch_size=4,
    ...                           keyword_universe=["sym:fever"])
    """

    def __init__(self, client: SseClient, batch_size: int = 8,
                 keyword_universe: Sequence[str] = (),
                 pad_to_universe: bool = True) -> None:
        if batch_size < 1:
            raise ParameterError("batch size must be at least 1")
        if pad_to_universe and keyword_universe:
            if not isinstance(client, Scheme2Client):
                # Scheme 1 updates already have capacity-fixed width per
                # keyword; only Scheme 2 exposes fake_update.
                raise ParameterError(
                    "padding requires a Scheme 2 client (fake_update)"
                )
        self._client = client
        self._batch_size = batch_size
        self._universe = frozenset(
            normalize_keyword(w) for w in keyword_universe
        )
        self._pad = pad_to_universe and bool(self._universe)
        self._queue: list[Document] = []
        self.flushes = 0
        self.fake_updates_sent = 0

    @property
    def pending(self) -> int:
        """Documents queued but not yet visible on the server."""
        return len(self._queue)

    @property
    def client(self) -> SseClient:
        """The wrapped SSE client."""
        return self._client

    def add_document(self, document: Document) -> None:
        """Deprecated: use ``add_documents([document])``.

        Kept as a shim for one release so pre-batching callers keep
        working; it forwards to the plural API, which is where all
        queueing and validation now lives.
        """
        warnings.warn(
            "HardenedUpdater.add_document is deprecated; "
            "use add_documents([...])",
            DeprecationWarning, stacklevel=2,
        )
        self.add_documents([document])

    def add_documents(self, documents: Sequence[Document]) -> None:
        """Queue documents; flushes automatically at each batch-size fill."""
        for document in documents:
            if self._pad:
                unknown = document.keywords - self._universe
                if unknown:
                    raise ParameterError(
                        f"keywords outside the declared universe: "
                        f"{sorted(unknown)[:3]}"
                    )
            self._queue.append(document)
            if len(self._queue) >= self._batch_size:
                self.flush()

    def flush(self) -> int:
        """Push the queued batch (padded if configured); return batch size."""
        if not self._queue:
            return 0
        batch, self._queue = self._queue, []
        real_keywords: set[str] = set()
        for doc in batch:
            real_keywords |= doc.keywords
        self._client.add_documents(batch)
        if self._pad:
            missing = sorted(self._universe - real_keywords)
            if missing:
                assert isinstance(self._client, Scheme2Client)
                self._client.fake_update(missing)
                self.fake_updates_sent += 1
        self.flushes += 1
        return len(batch)

    def search(self, keyword: str) -> SearchResult:
        """Flush pending updates, then search (results are never stale)."""
        self.flush()
        return self._client.search(keyword)
