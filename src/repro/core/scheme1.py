"""Scheme 1 — the computationally efficient scheme (paper §5.2).

Searchable representation of keyword w:

    S(w) = ( f_kw(w),  I(w) ⊕ G(r),  F(r) )

* ``f_kw(w)`` — PRF tag identifying the representation;
* ``I(w)`` — bit array over document ids (bit i set ⟺ w ∈ W_i);
* ``G(r)`` — PRG mask from a per-keyword single-use nonce r;
* ``F(r)`` — ElGamal encryption of r; only the client can invert it.

Protocols (Figs. 1 and 2 — both two rounds):

**Update** (MetadataStorage): the client sends the tags, the server returns
each keyword's F(r); the client recovers r, draws a fresh r', and sends
``U(w) ⊕ G(r) ⊕ G(r')`` with ``F(r')``.  The server XORs the patch onto the
stored masked index — it never learns I, U, r or r'.  Keywords the server
has never seen get a fresh entry through the same message flow.

**Search**: the client sends the tag; the server returns F(r); the client
reveals r; the server unmasks I(w) = (I(w)⊕G(r)) ⊕ G(r) and returns the
matching encrypted documents.

The bit-array representation is why updates are bandwidth-heavy: every
patch is ``capacity/8`` bytes per keyword regardless of how few documents
changed — exactly the §5.4 criticism that motivates Scheme 2.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.api import SearchResult, SseClient
from repro.core.cache import DEFAULT_CACHE_SIZE, BoundedCache
from repro.core.documents import Document, normalize_keyword
from repro.core.keys import MasterKey
from repro.core.server import BaseSseServer, decode_doc_id, encode_doc_id
from repro.core.state import pack_fields, unpack_fields
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.bytesutil import xor_bytes
from repro.crypto.elgamal import (ElGamalCiphertext, ElGamalKeyPair,
                                  generate_keypair)
from repro.crypto.prg import prg_expand
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.ds.avl import AvlTree
from repro.ds.bitset import BitsetIndex
from repro.errors import CapacityError, ParameterError, ProtocolError
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType

__all__ = ["Scheme1Server", "Scheme1Client", "group_keywords"]

_ABSENT = b""  # wire marker: "no such tag on the server yet"

_S1_PREFIX = b"s1:"  # durable-state namespace: tag -> masked ‖ F(r)


def group_keywords(documents: Sequence[Document]) -> dict[str, list[int]]:
    """Step 1–2 of MetadataStorage: unique keywords → sorted id lists."""
    grouped: dict[str, list[int]] = {}
    for doc in documents:
        for keyword in doc.keywords:
            grouped.setdefault(keyword, []).append(doc.doc_id)
    return {w: sorted(ids) for w, ids in grouped.items()}


class Scheme1Server(BaseSseServer):
    """Server side of Scheme 1.

    Index entries are ``tag -> (masked_index_bytes, serialized F(r))``.
    The server performs only XORs and tree lookups — the "computationally
    efficient" property of the scheme's title.
    """

    def __init__(self, capacity: int, elgamal_modulus_bytes: int) -> None:
        super().__init__()
        if capacity <= 0:
            raise ParameterError("capacity must be positive")
        self.capacity = capacity
        self._masked_len = (capacity + 7) // 8
        self._fr_len = 2 * elgamal_modulus_bytes

    def _handle_scheme_message(self, message: Message) -> Message:
        if message.type == MessageType.S1_STORE_ENTRY:
            return self._handle_store_entry(message)
        if message.type == MessageType.S1_UPDATE_REQUEST:
            return self._handle_update_request(message)
        if message.type == MessageType.S1_UPDATE_PATCH:
            return self._handle_update_patch(message)
        if message.type == MessageType.S1_SEARCH_REQUEST:
            return self._handle_search_request(message)
        if message.type == MessageType.S1_SEARCH_REVEAL:
            return self._handle_search_reveal(message)
        return super()._handle_scheme_message(message)

    def _validate_entry(self, masked: bytes, fr: bytes) -> None:
        if len(masked) != self._masked_len:
            raise ProtocolError("masked index has the wrong width")
        if len(fr) != self._fr_len:
            raise ProtocolError("F(r) ciphertext has the wrong width")

    def _insert_entry(self, tag: bytes, masked: bytes, fr: bytes) -> None:
        self.index.insert(tag, (masked, fr))
        self.state_journal.put(_S1_PREFIX + tag, pack_fields(masked, fr))

    def _handle_store_entry(self, message: Message) -> Message:
        """Initial upload: (tag, masked, F(r)) triples, batched."""
        fields = message.fields
        if len(fields) % 3:
            raise ProtocolError("S1_STORE_ENTRY fields come in triples")
        for i in range(0, len(fields), 3):
            tag, masked, fr = fields[i], fields[i + 1], fields[i + 2]
            self._validate_entry(masked, fr)
            self._insert_entry(tag, masked, fr)
        return Message(MessageType.ACK)

    def _handle_update_request(self, message: Message) -> Message:
        """Round 1 of Fig. 1: return F(r) per tag (or the absent marker)."""
        replies: list[bytes] = []
        for tag in message.fields:
            entry = self._lookup_tag(tag)
            replies.append(_ABSENT if entry is None else entry[1])
        return Message(MessageType.S1_UPDATE_NONCE, tuple(replies))

    def _handle_update_patch(self, message: Message) -> Message:
        """Round 2 of Fig. 1: XOR patches onto masked indexes.

        Fields come in (tag, patch, F(r')) triples.  For a known tag the
        server computes ``stored ⊕ patch`` = I'(w) ⊕ G(r'); for a new tag
        the patch *is* the fresh masked index.
        """
        fields = message.fields
        if len(fields) % 3:
            raise ProtocolError("S1_UPDATE_PATCH fields come in triples")
        for i in range(0, len(fields), 3):
            tag, patch, fr_new = fields[i], fields[i + 1], fields[i + 2]
            self._validate_entry(patch, fr_new)
            entry = self.index.get(tag)
            if entry is None:
                self._insert_entry(tag, patch, fr_new)
            else:
                masked, _ = entry
                self._insert_entry(tag, xor_bytes(masked, patch), fr_new)
        return Message(MessageType.ACK)

    def _handle_search_request(self, message: Message) -> Message:
        """Round 1 of Fig. 2: look up the tag, return F(r)."""
        (tag,) = message.expect(MessageType.S1_SEARCH_REQUEST, 1)
        self.searches_handled += 1
        entry = self._lookup_tag(tag)
        if entry is None:
            return Message(MessageType.S1_SEARCH_NONCE, (_ABSENT,))
        return Message(MessageType.S1_SEARCH_NONCE, (entry[1],))

    def _handle_search_reveal(self, message: Message) -> Message:
        """Round 2 of Fig. 2: unmask I(w) with the revealed r, serve docs."""
        tag, nonce = message.expect(MessageType.S1_SEARCH_REVEAL, 2)
        entry = self.index.get(tag)
        if entry is None:
            raise ProtocolError("search reveal for an unknown tag")
        masked, _ = entry
        index_bytes = xor_bytes(masked, prg_expand(nonce, len(masked)))
        id_set = BitsetIndex.from_bytes(index_bytes, self.capacity)
        return self._documents_result(sorted(id_set))

    # -- snapshot protocol (see repro.core.state) --------------------------

    def _index_state_records(self):
        for tag, (masked, fr) in self.index.items():
            yield _S1_PREFIX + tag, pack_fields(masked, fr)

    def _state_loaders(self):
        loaders = super()._state_loaders()
        loaders[_S1_PREFIX] = self._load_entry_record
        return loaders

    def _load_entry_record(self, key: bytes, value: bytes) -> None:
        masked, fr = unpack_fields(value)
        self._validate_entry(masked, fr)
        self.index.insert(key[len(_S1_PREFIX):], (masked, fr))

    def _clear_state(self) -> None:
        super()._clear_state()
        self.index = AvlTree()


class Scheme1Client(SseClient):
    """Client side of Scheme 1.

    Holds the master key and the ElGamal keypair.  ``capacity`` fixes the
    bit-array width, i.e. the maximum document id the index can represent —
    a structural constant of the scheme (masks must align bit-for-bit).
    """

    STATE_FORMAT = "repro.scheme1.client/1"

    def __init__(self, master_key: MasterKey, channel: Channel, *,
                 capacity: int, keypair: ElGamalKeyPair | None = None,
                 rng: RandomSource | None = None,
                 decrypt_bodies: bool = True,
                 cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        super().__init__(channel)
        self._key = master_key
        self._rng = rng if rng is not None else SystemRandomSource()
        self._keypair = keypair if keypair is not None else generate_keypair(rng=self._rng)
        self._capacity = capacity
        self._cipher = AuthenticatedCipher(master_key.k_m, rng=self._rng)
        self._masked_len = (capacity + 7) // 8
        self._nonce_size = min(self._keypair.public.nonce_size, 30)
        # Search-only delegates (see repro.core.delegation) hold a dummy
        # k_m and set this False: searches return ids, bodies stay opaque.
        self._decrypt_bodies = decrypt_bodies
        # PRF tags are pure functions of the (immutable) master key, so
        # cached entries never go stale — the cap only bounds memory.
        self._tag_cache = BoundedCache(cache_size)

    @property
    def capacity(self) -> int:
        """Maximum number of documents this index can address."""
        return self._capacity

    @property
    def keypair(self) -> ElGamalKeyPair:
        """The client's ElGamal keypair (private key never leaves here)."""
        return self._keypair

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size snapshot of the keyword-tag cache."""
        return {"tags": self._tag_cache.stats()}

    # -- helpers ---------------------------------------------------------

    def _tag_for(self, keyword: str) -> bytes:
        return self._tag_cache.get_or_compute(
            keyword, lambda: self._key.tag_for(keyword)
        )

    def _fresh_nonce(self) -> tuple[bytes, bytes]:
        """Draw r and return (r, serialized F(r))."""
        nonce = self._rng.random_bytes(self._nonce_size)
        fr = self._keypair.public.encrypt_nonce(nonce, self._rng)
        return nonce, fr.serialize(self._keypair.public.modulus_bytes)

    def _decrypt_fr(self, fr_bytes: bytes) -> bytes:
        ct = ElGamalCiphertext.deserialize(
            fr_bytes, self._keypair.public.modulus_bytes
        )
        return self._keypair.decrypt_nonce(ct)

    def _mask(self, bitset: BitsetIndex, nonce: bytes) -> bytes:
        return xor_bytes(bitset.to_bytes(), prg_expand(nonce, self._masked_len))

    def _check_ids(self, documents: Sequence[Document]) -> None:
        for doc in documents:
            if doc.doc_id >= self._capacity:
                raise CapacityError(
                    f"document id {doc.doc_id} exceeds index capacity "
                    f"{self._capacity}"
                )

    def _documents_message(self, documents: Sequence[Document]) -> Message:
        fields: list[bytes] = []
        for doc in documents:
            fields.append(encode_doc_id(doc.doc_id))
            fields.append(self._cipher.encrypt(
                doc.data, associated_data=encode_doc_id(doc.doc_id)
            ))
        return Message(MessageType.STORE_DOCUMENT, tuple(fields))

    def _send_expect_acks(self, messages: Sequence[Message]) -> None:
        """Ship *messages* as one batch frame; every reply must be ACK."""
        for reply in self._channel.request_many(messages):
            reply.expect(MessageType.ACK)

    # -- public API ------------------------------------------------------

    def store(self, documents: Sequence[Document],
              pad_keywords_to: int | None = None) -> None:
        """Initial Storage: upload encrypted documents + fresh S(w) entries.

        ``pad_keywords_to`` hides |W_D| (the trace's keyword count — the
        "how to hide the amount of keywords" remark of §4.1/§5.7): decoy
        entries with random tags and empty masked indexes top the index up
        to the target, and the server cannot tell them from real keywords.
        Decoy tags are drawn from the same 16-byte space as PRF outputs,
        so no real future keyword collides with one except with negligible
        probability.

        Documents and index entries travel in ONE batch frame: one round
        trip, one server lock, one fsync for the whole upload.
        """
        self._check_ids(documents)
        messages = [self._documents_message(documents)]
        fields: list[bytes] = []
        grouped = group_keywords(documents)
        for keyword, ids in grouped.items():
            bitset = BitsetIndex(self._capacity, ids)
            nonce, fr = self._fresh_nonce()
            fields.append(self._tag_for(keyword))
            fields.append(self._mask(bitset, nonce))
            fields.append(fr)
        if pad_keywords_to is not None:
            for _ in range(max(0, pad_keywords_to - len(grouped))):
                nonce, fr = self._fresh_nonce()
                fields.append(self._rng.random_bytes(16))
                fields.append(self._mask(BitsetIndex(self._capacity),
                                         nonce))
                fields.append(fr)
        if fields:
            messages.append(Message(MessageType.S1_STORE_ENTRY,
                                    tuple(fields)))
        self._send_expect_acks(messages)

    def _patch_message(self, grouped: dict[str, list[int]]) -> Message:
        """Fig. 1 round 1 (fetch F(r) per tag), then build the round-2 patch.

        The returned ``S1_UPDATE_PATCH`` is NOT yet sent: callers batch it
        with whatever else the operation ships (document bodies, deletes)
        so round 2 costs one frame total.  All PRG masks for the touched
        keywords are computed in this one pass.
        """
        keywords = sorted(grouped)
        tags = [self._tag_for(w) for w in keywords]

        # Round 1: fetch F(r) for every touched keyword.
        reply = self._channel.request(
            Message(MessageType.S1_UPDATE_REQUEST, tuple(tags))
        )
        fr_list = reply.expect(MessageType.S1_UPDATE_NONCE, len(tags))

        # Round 2 payload: the masked XOR patches.
        fields: list[bytes] = []
        for keyword, tag, fr_bytes in zip(keywords, tags, fr_list):
            update_set = BitsetIndex(self._capacity, grouped[keyword])
            new_nonce, new_fr = self._fresh_nonce()
            patch = self._mask(update_set, new_nonce)
            if fr_bytes != _ABSENT:
                old_nonce = self._decrypt_fr(fr_bytes)
                patch = xor_bytes(
                    patch, prg_expand(old_nonce, self._masked_len)
                )
            fields.extend((tag, patch, new_fr))
        return Message(MessageType.S1_UPDATE_PATCH, tuple(fields))

    def add_documents(self, documents: Sequence[Document]) -> None:
        """The Fig. 1 two-round update protocol (batched over keywords).

        U(w) bits are XOR deltas, so this same call *removes* a document
        from a keyword if it was already indexed — the toggle semantics of
        the paper's I'(w) = I(w) ⊕ U(w).  Round 2 carries the document
        bodies and the metadata patch in one batch frame.
        """
        self._check_ids(documents)
        grouped = group_keywords(documents)
        messages = [self._documents_message(documents)]
        if grouped:
            messages.append(self._patch_message(grouped))
        self._send_expect_acks(messages)

    def remove_documents(self, documents: Sequence[Document]) -> None:
        """Remove documents from the index and delete their bodies.

        Callers must supply each document's *full* keyword set (which the
        key holder can always reconstruct by fetching and decrypting it):
        the XOR patch clears exactly those bits, and any keyword left
        unpatched would keep referencing the deleted body.  The patch and
        the body deletes ship as one atomic batch frame.
        """
        self._check_ids(documents)
        grouped = group_keywords(documents)
        messages: list[Message] = []
        if grouped:
            messages.append(self._patch_message(grouped))
        messages.append(Message(
            MessageType.DELETE_DOCUMENT,
            tuple(encode_doc_id(doc.doc_id) for doc in documents),
        ))
        self._send_expect_acks(messages)

    def refresh_masks(self, keywords: Sequence[str]) -> None:
        """Re-mask keywords without changing their contents (hardening).

        A search reveals r, leaving that keyword's index permanently
        unmasked to a server that remembers it.  Refreshing runs the
        ordinary Fig. 1 update with an all-zero U(w): contents unchanged,
        fresh nonce — the server can no longer read the index going
        forward.  On the wire this is byte-for-byte an ordinary update, so
        refreshes also serve as Scheme 1's fake updates (§5.7).
        """
        grouped = {normalize_keyword(w): [] for w in keywords}
        if grouped:
            self._send_expect_acks([self._patch_message(grouped)])

    def _parse_documents_result(self, keyword: str,
                                result: Message) -> SearchResult:
        fields = result.expect(MessageType.DOCUMENTS_RESULT)
        doc_ids: list[int] = []
        documents: list[bytes] = []
        for i in range(0, len(fields), 2):
            doc_id = decode_doc_id(fields[i])
            doc_ids.append(doc_id)
            if self._decrypt_bodies:
                documents.append(self._cipher.decrypt(
                    fields[i + 1], associated_data=fields[i]
                ))
            else:
                documents.append(fields[i + 1])  # opaque ciphertext
        return SearchResult(keyword, doc_ids, documents)

    def search(self, keyword: str) -> SearchResult:
        """The Fig. 2 two-round search protocol."""
        tag = self._tag_for(keyword)
        reply = self._channel.request(
            Message(MessageType.S1_SEARCH_REQUEST, (tag,))
        )
        (fr_bytes,) = reply.expect(MessageType.S1_SEARCH_NONCE, 1)
        if fr_bytes == _ABSENT:
            # The tag has no searchable representation: no document has ever
            # carried this keyword.  One round spent, empty result.
            return SearchResult(keyword, [], [])
        nonce = self._decrypt_fr(fr_bytes)
        result = self._channel.request(
            Message(MessageType.S1_SEARCH_REVEAL, (tag, nonce))
        )
        return self._parse_documents_result(keyword, result)

    def search_batch(self, keywords: Sequence[str]) -> list[SearchResult]:
        """Fig. 2 for many keywords in the scheme's two rounds, not 2·n.

        Round 1 ships every tag in one batch frame; round 2 reveals the
        nonces of the keywords that exist (absent keywords already have
        their empty result and cost nothing further).  Results align
        positionally with *keywords*.
        """
        if not keywords:
            return []
        tags = [self._tag_for(k) for k in keywords]
        replies = self._channel.request_many([
            Message(MessageType.S1_SEARCH_REQUEST, (tag,)) for tag in tags
        ])
        results: list[SearchResult | None] = [None] * len(keywords)
        reveals: list[tuple[int, Message]] = []
        for i, (keyword, tag, reply) in enumerate(
                zip(keywords, tags, replies)):
            (fr_bytes,) = reply.expect(MessageType.S1_SEARCH_NONCE, 1)
            if fr_bytes == _ABSENT:
                results[i] = SearchResult(keyword, [], [])
            else:
                nonce = self._decrypt_fr(fr_bytes)
                reveals.append((i, Message(
                    MessageType.S1_SEARCH_REVEAL, (tag, nonce)
                )))
        if reveals:
            reveal_replies = self._channel.request_many(
                [message for _, message in reveals]
            )
            for (i, _), result in zip(reveals, reveal_replies):
                results[i] = self._parse_documents_result(keywords[i],
                                                          result)
        return results
