"""Master keys and Keygen (paper §5.1).

``Keygen(s)`` outputs ``K = (k_m, k_w)``: k_m encrypts data items, k_w
drives the keyword-side PRFs.  We additionally derive the per-role PRF
labels here so every scheme uses consistent domain separation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prf import Prf
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.errors import ParameterError

__all__ = ["MasterKey", "keygen", "TAG_SIZE"]

# Keyword tags f_kw(w) are truncated PRF outputs; 16 bytes keeps collision
# probability negligible (2^-64 birthday bound at 2^32 keywords) while
# halving index bandwidth versus full 32-byte outputs.
TAG_SIZE = 16


@dataclass(frozen=True)
class MasterKey:
    """The client's master key K = (k_m, k_w)."""

    k_m: bytes
    k_w: bytes

    def __post_init__(self) -> None:
        if len(self.k_m) < 16 or len(self.k_w) < 16:
            raise ParameterError("master key halves must be >= 16 bytes")

    def keyword_tag_prf(self) -> Prf:
        """PRF for keyword tags f_kw(w)."""
        return Prf(self.k_w, label=b"repro.tag")

    def keyword_seed_prf(self) -> Prf:
        """PRF deriving per-keyword secrets (chain seeds, etc.)."""
        return Prf(self.k_w, label=b"repro.kwseed")

    def update_chain_prf(self) -> Prf:
        """PRF seeding Scheme 3's per-keyword update-key chains.

        Domain-separated from :meth:`keyword_seed_prf` so forward-private
        update keys never collide with Scheme 2 segment-key material even
        when both schemes run off one master key.
        """
        return Prf(self.k_w, label=b"repro.s3.chain")

    def tag_for(self, keyword: str) -> bytes:
        """The searchable-representation identifier f_kw(w), truncated."""
        return self.keyword_tag_prf().evaluate_truncated(
            keyword.encode("utf-8"), TAG_SIZE
        )


def keygen(security_parameter: int = 32,
           rng: RandomSource | None = None) -> MasterKey:
    """Keygen(s): sample K = (k_m, k_w) ∈ {0,1}^s × {0,1}^s.

    *security_parameter* is in bytes (32 bytes = 256 bits).
    """
    if security_parameter < 16:
        raise ParameterError("security parameter must be >= 16 bytes")
    rng = rng if rng is not None else SystemRandomSource()
    return MasterKey(
        k_m=rng.random_bytes(security_parameter),
        k_w=rng.random_bytes(security_parameter),
    )
