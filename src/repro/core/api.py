"""Abstract SSE scheme interface shared by our schemes and all baselines.

The paper's conventional-scheme skeleton (§3) — Keygen, Storage (DataStorage
+ MetadataStorage), Trapdoor, Search — maps onto a client/server pair:

* the **client** object holds the master key and drives protocols;
* the **server** object holds only what the client uploaded and exposes a
  single ``handle(message)`` entry point (it is honest-but-curious: it runs
  the protocol faithfully but sees every byte).

``SseClient`` is the single user-facing surface: ``store``,
``add_documents``, ``remove_documents``, ``search``, ``search_batch``,
``export_state``, ``import_state``.  Implementations differ in how many
rounds each call costs — exactly what Table 1 compares.  By convention
every concrete client constructor takes its required collaborators
(master key, channel) positionally and **every option keyword-only**, so
adding an option never silently shifts an argument.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.documents import Document
from repro.errors import AuthError, ParameterError, ProtocolError, ReproError
from repro.net.channel import Channel
from repro.net.messages import (Message, MessageType, pack_batch_result,
                                unpack_batch)
from repro.obs.metrics import NULL_METRICS
from repro.obs.opcount import active_recorder, diff_counts
from repro.obs.trace import span

__all__ = ["SseClient", "SseServerHandler", "SearchResult"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one search: matching ids and decrypted documents.

    Behaves like a small read-only collection::

        result = client.search("flu")
        if not result.empty:
            for doc_id, plaintext in result:
                ...
        assert len(result) == len(result.doc_ids)

    ``documents`` aligns index-for-index with ``doc_ids``; a search-only
    delegate (``decrypt_bodies=False``) yields ciphertext bodies here.
    """

    keyword: str
    doc_ids: list[int]
    documents: list[bytes]

    def __post_init__(self) -> None:
        if len(self.doc_ids) != len(self.documents):
            raise ParameterError(
                "doc_ids and documents must align index-for-index"
            )

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        return iter(zip(self.doc_ids, self.documents))

    @property
    def empty(self) -> bool:
        """True when the search matched nothing."""
        return not self.doc_ids

    def __repr__(self) -> str:
        return (f"SearchResult(keyword={self.keyword!r}, "
                f"doc_ids={self.doc_ids})")


class SseServerHandler(abc.ABC):
    """Server side: a message handler bound to server-side state.

    Besides the message loop, every shipped server implements the
    **snapshot protocol**: its whole state is expressible as a flat
    iterable of ``(key, value)`` byte records in one namespaced keyspace
    (document bodies under ``doc:``, index entries under scheme-specific
    prefixes — see :mod:`repro.core.state`).  The generic
    :class:`~repro.core.persistence.DurableServer` builds write-through
    persistence for *any* scheme on top of exactly these two methods.
    """

    @abc.abstractmethod
    def handle(self, message):
        """Process one protocol message and return the reply message."""

    def handle_batch(self, message: Message) -> Message:
        """Execute a ``BATCH_REQUEST``: every inner item, one reply frame.

        Items run in order through :meth:`handle`.  A failing item is
        answered in-position by an ``ERROR`` message carrying the error
        class name — the remaining items still execute, so one bad item
        never poisons the batch.  Under a service wrapper the whole batch
        runs inside a single lock acquisition (classification happens in
        ``repro.net.session``) and flushes as one journal append (see
        ``repro.core.persistence``).

        Observability: a ``server.batch`` span wraps the batch, each item
        gets a ``server.batch_item`` span carrying its own crypto-op
        delta, and the ``batch_items{side="server"}`` histogram records
        the batch size.
        """
        inner = unpack_batch(message)
        metrics = getattr(self, "metrics", None) or NULL_METRICS
        metrics.histogram("batch_items", side="server").observe(len(inner))
        replies: list[Message] = []
        with span("server.batch", items=len(inner)):
            for item in inner:
                try:
                    with span("server.batch_item",
                              type=item.type.name) as sp:
                        ops = active_recorder()
                        before = ops.thread_snapshot()
                        reply = self.handle(item)
                        delta = diff_counts(ops.thread_snapshot(), before)
                        if delta:
                            sp.set(ops=delta)
                except ReproError as exc:
                    metrics.counter("batch_item_errors_total",
                                    type=item.type.name).inc()
                    replies.append(Message(
                        MessageType.ERROR,
                        (type(exc).__name__.encode("utf-8"),)))
                else:
                    replies.append(reply)
        return pack_batch_result(replies)

    @property
    @abc.abstractmethod
    def unique_keywords(self) -> int:
        """Number of searchable representations stored (the paper's u)."""

    def state_records(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield this server's entire state as (key, value) records.

        Keys are namespaced byte strings; the snapshot is complete — a
        fresh server fed these records through :meth:`load_state` answers
        every message identically.  Volatile accelerations (plaintext
        caches, leakage bookkeeping) are deliberately excluded.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the snapshot protocol"
        )

    def load_state(self, records: Iterable[tuple[bytes, bytes]]) -> None:
        """Replace all server state with *records* from a prior snapshot."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the snapshot protocol"
        )


class SseClient(abc.ABC):
    """Client side of a searchable symmetric encryption scheme.

    Clients also speak the **state-export protocol**: whatever mutable
    state a client keeps beyond its keys (update counters, plaintext
    rebuild indexes) round-trips through :meth:`export_state` /
    :meth:`import_state` as a JSON-safe dict, so a client process can be
    restarted against a durable server.  ``STATE_FORMAT`` names the
    per-scheme wire format; mixing states across schemes is rejected.
    Key material never appears in an exported state.
    """

    STATE_FORMAT = "repro.client/1"

    def __init__(self, channel: Channel) -> None:
        self._channel = channel
        #: Tenant id bound by :meth:`open`; None on legacy sessions.
        self.tenant: str | None = None

    @property
    def channel(self) -> Channel:
        """The instrumented channel to this client's server."""
        return self._channel

    def open(self, tenant_id: str, token: bytes) -> "SseClient":
        """Perform the ``SESSION_OPEN`` handshake for *tenant_id*.

        Binds this client's connection to the tenant's namespace on a
        tenant-aware server.  Returns ``self`` so the handshake composes
        with the context manager::

            with make_client(...) as client:
                client.open("alice", token)
                ...

        A rejected handshake raises :class:`~repro.errors.AuthError` —
        terminal, never retried (see :mod:`repro.net.retry`).
        """
        request = Message(MessageType.SESSION_OPEN,
                          (tenant_id.encode("utf-8"), bytes(token)))
        try:
            reply = self._channel.request(request)
        except ProtocolError as exc:
            # Over TCP the server's AuthError arrives as an ERROR reply
            # carrying the class name; surface it as the real type.
            if "AuthError" in str(exc):
                raise AuthError(
                    f"session rejected for tenant {tenant_id!r}") from exc
            raise
        fields = reply.expect(MessageType.SESSION_ACCEPT, 1)
        accepted = fields[0].decode("utf-8")
        if accepted != tenant_id:
            raise ProtocolError(
                f"server accepted tenant {accepted!r}, "
                f"expected {tenant_id!r}")
        self.tenant = tenant_id
        return self

    @abc.abstractmethod
    def store(self, documents: Sequence[Document]) -> None:
        """Initial Storage((D_1..D_n), K): upload documents + metadata."""

    @abc.abstractmethod
    def add_documents(self, documents: Sequence[Document]) -> None:
        """MetadataStorage update: add new documents after initial storage."""

    def remove_documents(self, documents: Sequence[Document]) -> None:
        """Remove *documents* (bodies and index references) if supported.

        Schemes whose update protocol cannot express removal (the static
        baselines) inherit this default and raise ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support document removal"
        )

    @abc.abstractmethod
    def search(self, keyword: str) -> SearchResult:
        """Trapdoor + Search: retrieve all documents containing *keyword*."""

    def search_batch(self, keywords: Sequence[str]) -> list[SearchResult]:
        """Search several keywords; results align with *keywords*.

        This default issues one round-trip per keyword.  Batch-capable
        clients (Scheme 1, Scheme 2) override it to ship every trapdoor
        in a single ``BATCH_REQUEST`` frame — same results, one round.
        Callers may rely on position *i* of the result answering
        ``keywords[i]``.
        """
        return [self.search(keyword) for keyword in keywords]

    def export_state(self) -> dict:
        """Return the client's non-key state as a JSON-safe dict."""
        return {"format": self.STATE_FORMAT}

    def import_state(self, state: dict) -> None:
        """Restore state previously produced by :meth:`export_state`."""
        found = state.get("format") if isinstance(state, dict) else None
        if found != self.STATE_FORMAT:
            raise ParameterError(
                f"client state format {found!r} does not match "
                f"{self.STATE_FORMAT!r}"
            )

    def close(self) -> None:
        """Release the client's transport (no-op for in-process channels)."""
        self._channel.close()

    def __enter__(self) -> "SseClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
