"""Abstract SSE scheme interface shared by our schemes and all baselines.

The paper's conventional-scheme skeleton (§3) — Keygen, Storage (DataStorage
+ MetadataStorage), Trapdoor, Search — maps onto a client/server pair:

* the **client** object holds the master key and drives protocols;
* the **server** object holds only what the client uploaded and exposes a
  single ``handle(message)`` entry point (it is honest-but-curious: it runs
  the protocol faithfully but sees every byte).

``SseClient`` is the user-facing surface: ``store``, ``search``,
``add_documents``.  Implementations differ in how many rounds each call
costs — exactly what Table 1 compares.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.documents import Document
from repro.errors import ParameterError
from repro.net.channel import Channel

__all__ = ["SseClient", "SseServerHandler", "SearchResult"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one search: matching ids and decrypted documents.

    Behaves like a small read-only collection::

        result = client.search("flu")
        if not result.empty:
            for doc_id, plaintext in result:
                ...
        assert len(result) == len(result.doc_ids)

    ``documents`` aligns index-for-index with ``doc_ids``; a search-only
    delegate (``decrypt_bodies=False``) yields ciphertext bodies here.
    """

    keyword: str
    doc_ids: list[int]
    documents: list[bytes]

    def __post_init__(self) -> None:
        if len(self.doc_ids) != len(self.documents):
            raise ParameterError(
                "doc_ids and documents must align index-for-index"
            )

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        return iter(zip(self.doc_ids, self.documents))

    @property
    def empty(self) -> bool:
        """True when the search matched nothing."""
        return not self.doc_ids

    def __repr__(self) -> str:
        return (f"SearchResult(keyword={self.keyword!r}, "
                f"doc_ids={self.doc_ids})")


class SseServerHandler(abc.ABC):
    """Server side: a message handler bound to server-side state.

    Besides the message loop, every shipped server implements the
    **snapshot protocol**: its whole state is expressible as a flat
    iterable of ``(key, value)`` byte records in one namespaced keyspace
    (document bodies under ``doc:``, index entries under scheme-specific
    prefixes — see :mod:`repro.core.state`).  The generic
    :class:`~repro.core.persistence.DurableServer` builds write-through
    persistence for *any* scheme on top of exactly these two methods.
    """

    @abc.abstractmethod
    def handle(self, message):
        """Process one protocol message and return the reply message."""

    @property
    @abc.abstractmethod
    def unique_keywords(self) -> int:
        """Number of searchable representations stored (the paper's u)."""

    def state_records(self) -> Iterator[tuple[bytes, bytes]]:
        """Yield this server's entire state as (key, value) records.

        Keys are namespaced byte strings; the snapshot is complete — a
        fresh server fed these records through :meth:`load_state` answers
        every message identically.  Volatile accelerations (plaintext
        caches, leakage bookkeeping) are deliberately excluded.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the snapshot protocol"
        )

    def load_state(self, records: Iterable[tuple[bytes, bytes]]) -> None:
        """Replace all server state with *records* from a prior snapshot."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the snapshot protocol"
        )


class SseClient(abc.ABC):
    """Client side of a searchable symmetric encryption scheme.

    Clients also speak the **state-export protocol**: whatever mutable
    state a client keeps beyond its keys (update counters, plaintext
    rebuild indexes) round-trips through :meth:`export_state` /
    :meth:`import_state` as a JSON-safe dict, so a client process can be
    restarted against a durable server.  ``STATE_FORMAT`` names the
    per-scheme wire format; mixing states across schemes is rejected.
    Key material never appears in an exported state.
    """

    STATE_FORMAT = "repro.client/1"

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    @property
    def channel(self) -> Channel:
        """The instrumented channel to this client's server."""
        return self._channel

    @abc.abstractmethod
    def store(self, documents: Sequence[Document]) -> None:
        """Initial Storage((D_1..D_n), K): upload documents + metadata."""

    @abc.abstractmethod
    def add_documents(self, documents: Sequence[Document]) -> None:
        """MetadataStorage update: add new documents after initial storage."""

    @abc.abstractmethod
    def search(self, keyword: str) -> SearchResult:
        """Trapdoor + Search: retrieve all documents containing *keyword*."""

    def export_state(self) -> dict:
        """Return the client's non-key state as a JSON-safe dict."""
        return {"format": self.STATE_FORMAT}

    def import_state(self, state: dict) -> None:
        """Restore state previously produced by :meth:`export_state`."""
        found = state.get("format") if isinstance(state, dict) else None
        if found != self.STATE_FORMAT:
            raise ParameterError(
                f"client state format {found!r} does not match "
                f"{self.STATE_FORMAT!r}"
            )

    def close(self) -> None:
        """Release the client's transport (no-op for in-process channels)."""
        self._channel.close()

    def __enter__(self) -> "SseClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
