"""Abstract SSE scheme interface shared by our schemes and all baselines.

The paper's conventional-scheme skeleton (§3) — Keygen, Storage (DataStorage
+ MetadataStorage), Trapdoor, Search — maps onto a client/server pair:

* the **client** object holds the master key and drives protocols;
* the **server** object holds only what the client uploaded and exposes a
  single ``handle(message)`` entry point (it is honest-but-curious: it runs
  the protocol faithfully but sees every byte).

``SseClient`` is the user-facing surface: ``store``, ``search``,
``add_documents``.  Implementations differ in how many rounds each call
costs — exactly what Table 1 compares.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.documents import Document
from repro.errors import ParameterError
from repro.net.channel import Channel

__all__ = ["SseClient", "SseServerHandler", "SearchResult"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one search: matching ids and decrypted documents.

    Behaves like a small read-only collection::

        result = client.search("flu")
        if not result.empty:
            for doc_id, plaintext in result:
                ...
        assert len(result) == len(result.doc_ids)

    ``documents`` aligns index-for-index with ``doc_ids``; a search-only
    delegate (``decrypt_bodies=False``) yields ciphertext bodies here.
    """

    keyword: str
    doc_ids: list[int]
    documents: list[bytes]

    def __post_init__(self) -> None:
        if len(self.doc_ids) != len(self.documents):
            raise ParameterError(
                "doc_ids and documents must align index-for-index"
            )

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        return iter(zip(self.doc_ids, self.documents))

    @property
    def empty(self) -> bool:
        """True when the search matched nothing."""
        return not self.doc_ids

    def __repr__(self) -> str:
        return (f"SearchResult(keyword={self.keyword!r}, "
                f"doc_ids={self.doc_ids})")


class SseServerHandler(abc.ABC):
    """Server side: a message handler bound to server-side state."""

    @abc.abstractmethod
    def handle(self, message):
        """Process one protocol message and return the reply message."""

    @property
    @abc.abstractmethod
    def unique_keywords(self) -> int:
        """Number of searchable representations stored (the paper's u)."""


class SseClient(abc.ABC):
    """Client side of a searchable symmetric encryption scheme."""

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    @property
    def channel(self) -> Channel:
        """The instrumented channel to this client's server."""
        return self._channel

    @abc.abstractmethod
    def store(self, documents: Sequence[Document]) -> None:
        """Initial Storage((D_1..D_n), K): upload documents + metadata."""

    @abc.abstractmethod
    def add_documents(self, documents: Sequence[Document]) -> None:
        """MetadataStorage update: add new documents after initial storage."""

    @abc.abstractmethod
    def search(self, keyword: str) -> SearchResult:
        """Trapdoor + Search: retrieve all documents containing *keyword*."""

    def close(self) -> None:
        """Release the client's transport (no-op for in-process channels)."""
        self._channel.close()

    def __enter__(self) -> "SseClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
