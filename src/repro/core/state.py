"""Durable-state plumbing shared by every SSE server.

Persistence used to be a per-scheme affair: a subclass per scheme reaching
into private index internals.  This module is the generic replacement.  A
server's whole state is a flat set of ``(key, value)`` byte records in one
namespaced keyspace:

=============  ====================================================
prefix         contents
=============  ====================================================
``doc:``       encrypted document bodies (id in 8 big-endian bytes)
``s1:``        Scheme 1 entries: tag -> masked index ‖ F(r)
``s2:``        Scheme 2 segments: position(4) ‖ tag -> blob ‖ verifier
``s3:``        Scheme 3 pending entries: address -> encrypted posting blob
``s3f:``       Scheme 3 folded records: address -> count(4) ‖ posting list
``swp:``       SWP word ciphertexts: sequence(8) -> doc id ‖ word ct
``goh:``       Goh per-document Bloom filters: doc id -> filter bits
``cgko.a:``    CGKO node array: address(8) -> encrypted node
``cgko.t:``    CGKO lookup table: tag -> masked head pointer
``cm:``        Chang–Mitzenmacher masked rows: doc id -> row bits
``t:<id>:``    tenant namespace wrapped around ALL of the above by the
               durable layer in multi-tenant deployments (see
               :func:`repro.tenancy.tenant_state_prefix`)
=============  ====================================================

Because index entries and document bodies share one keyspace, a single
:class:`~repro.storage.kvstore.KvStore` (and a single log file) holds
everything the server knows — the durable layer never needs to understand
a scheme's internals.

Two pieces cooperate:

* :class:`StateJournal` — a change buffer each server writes to at every
  mutation site.  Disabled (and free) by default; the durable wrapper
  enables it and drains it into the store after each handled message.
* :class:`SnapshotStateMixin` — implements the
  :class:`~repro.core.api.SseServerHandler` snapshot protocol
  (``state_records`` / ``load_state``) from four small hooks a scheme
  provides for its index records.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterable, Iterator, Tuple

from repro.errors import StorageError

__all__ = ["StateJournal", "SnapshotStateMixin", "DOC_PREFIX",
           "pack_fields", "unpack_fields"]

DOC_PREFIX = b"doc:"


def pack_fields(*fields: bytes) -> bytes:
    """Concatenate byte fields with 4-byte length prefixes (invertible)."""
    out = bytearray()
    for field in fields:
        out += struct.pack(">I", len(field))
        out += field
    return bytes(out)


def unpack_fields(blob: bytes) -> list[bytes]:
    """Invert :func:`pack_fields`."""
    fields: list[bytes] = []
    offset = 0
    while offset < len(blob):
        if offset + 4 > len(blob):
            raise StorageError("truncated length prefix in state record")
        (length,) = struct.unpack(">I", blob[offset:offset + 4])
        offset += 4
        if offset + length > len(blob):
            raise StorageError("truncated field in state record")
        fields.append(blob[offset:offset + length])
        offset += length
    return fields


class StateJournal:
    """Buffered upserts/deletes between two flush points.

    Servers call :meth:`put` / :meth:`delete` at every state mutation;
    while ``enabled`` is False (the default, i.e. no durable wrapper is
    attached) both are no-ops, so purely in-memory servers pay nothing
    and never accumulate memory.  ``put`` and ``delete`` of the same key
    cancel: the journal always describes the *net* change since the last
    :meth:`drain`.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._upserts: Dict[bytes, bytes] = {}
        self._deletes: set[bytes] = set()

    def put(self, key: bytes, value: bytes) -> None:
        """Record that *key* now holds *value*."""
        if not self.enabled:
            return
        key = bytes(key)
        self._deletes.discard(key)
        self._upserts[key] = bytes(value)

    def delete(self, key: bytes) -> None:
        """Record that *key* is gone."""
        if not self.enabled:
            return
        key = bytes(key)
        self._upserts.pop(key, None)
        self._deletes.add(key)

    @property
    def dirty(self) -> bool:
        """True when there are unflushed changes."""
        return bool(self._upserts or self._deletes)

    def drain(self) -> tuple[Dict[bytes, bytes], set[bytes]]:
        """Return (upserts, deletes) accumulated so far and reset."""
        upserts, deletes = self._upserts, self._deletes
        self._upserts, self._deletes = {}, set()
        return upserts, deletes


class SnapshotStateMixin:
    """Default implementation of the server snapshot protocol.

    Assumes the host class has ``self.documents`` (an
    :class:`~repro.storage.docstore.EncryptedDocumentStore`) and
    ``self.state_journal``.  Schemes contribute their index records via
    four hooks:

    * :meth:`_index_state_records` — yield the index's records;
    * :meth:`_state_loaders` — map each owned key prefix to a loader;
    * :meth:`_clear_state` — drop all state before a load;
    * :meth:`_finish_load_state` — rebuild order-dependent structures
      after every record has been delivered.
    """

    def state_records(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield every (key, value) record of this server's state."""
        yield from self.documents.records()
        yield from self._index_state_records()

    def load_state(self, records: Iterable[Tuple[bytes, bytes]]) -> None:
        """Replace all state with *records* (the snapshot inverse)."""
        self._clear_state()
        loaders = self._state_loaders()
        for key, value in records:
            for prefix, load in loaders.items():
                if key.startswith(prefix):
                    load(key, value)
                    break
            else:
                raise StorageError(
                    f"state record in unknown namespace: {bytes(key[:12])!r}"
                )
        self._finish_load_state()

    # -- scheme hooks ------------------------------------------------------

    def _index_state_records(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield the scheme's index records (documents are handled here)."""
        return iter(())

    def _state_loaders(self) -> Dict[bytes, Callable[[bytes, bytes], None]]:
        """Map key prefixes to per-record loaders."""
        return {DOC_PREFIX: self.documents.load_record}

    def _clear_state(self) -> None:
        """Drop all server state ahead of a load."""
        self.documents.clear()

    def _finish_load_state(self) -> None:
        """Hook for rebuilding order-dependent structures after a load."""
