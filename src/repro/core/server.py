"""Shared server-side machinery for both schemes.

The server is honest-but-curious: it executes the protocol exactly, stores
whatever the client uploads, and answers searches — while everything it
holds (documents, searchable representations) is ciphertext.  Searchable
representations live in an AVL tree keyed by the 16-byte keyword tag,
realizing the paper's "tree structure for the searchable representations"
and its O(log u) lookup (§5.1).
"""

from __future__ import annotations

from repro.core.api import SseServerHandler
from repro.core.state import SnapshotStateMixin, StateJournal
from repro.ds.avl import AvlTree
from repro.errors import ProtocolError
from repro.net.messages import Message, MessageType
from repro.obs.metrics import NULL_METRICS
from repro.storage.docstore import EncryptedDocumentStore

__all__ = ["BaseSseServer", "encode_doc_id", "decode_doc_id"]


def encode_doc_id(doc_id: int) -> bytes:
    """Canonical 8-byte big-endian document-id encoding for the wire."""
    return doc_id.to_bytes(8, "big")


def decode_doc_id(data: bytes) -> int:
    """Invert :func:`encode_doc_id`."""
    if len(data) != 8:
        raise ProtocolError("document ids travel as 8 bytes")
    return int.from_bytes(data, "big")


class BaseSseServer(SnapshotStateMixin, SseServerHandler):
    """Document storage plus a tag-keyed AVL index of searchable reps.

    Subclasses implement the scheme-specific message types; this base
    handles document upload/retrieval and keeps instrumentation counters
    the benchmarks read (AVL comparisons, documents served).  The
    :class:`~repro.core.state.StateJournal` feeds the generic durable
    wrapper; it is disabled (free) until a wrapper enables it.
    """

    def __init__(self, docstore: EncryptedDocumentStore | None = None,
                 metrics=None) -> None:
        self.state_journal = StateJournal()
        if docstore is None:
            docstore = EncryptedDocumentStore(journal=self.state_journal)
        else:
            docstore.journal = self.state_journal
        self.documents = docstore
        self.index = AvlTree()
        # Observability registry.  Defaults to the shared no-op; a service
        # wrapper (TcpSseServer) that sees the default swaps in its own so
        # handler counters land beside the wire metrics.
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Instrumentation for the complexity benchmarks.
        self.searches_handled = 0
        self.index_comparisons_last_search = 0
        self.missing_documents_last_search = 0

    @property
    def unique_keywords(self) -> int:
        """The paper's u: number of searchable representations stored."""
        return len(self.index)

    def handle(self, message: Message) -> Message:
        """Dispatch one protocol message."""
        self.metrics.counter("handled_total", type=message.type.name).inc()
        if message.type == MessageType.BATCH_REQUEST:
            return self.handle_batch(message)
        if message.type == MessageType.STORE_DOCUMENT:
            return self._handle_store_document(message)
        if message.type == MessageType.DELETE_DOCUMENT:
            return self._handle_delete_document(message)
        return self._handle_scheme_message(message)

    def _handle_scheme_message(self, message: Message) -> Message:
        raise ProtocolError(
            f"unsupported message type {message.type.name}"
        )

    def _handle_store_document(self, message: Message) -> Message:
        """STORE_DOCUMENT carries (id, ciphertext) pairs, batched."""
        fields = message.fields
        if len(fields) % 2:
            raise ProtocolError("STORE_DOCUMENT fields must come in pairs")
        for i in range(0, len(fields), 2):
            doc_id = decode_doc_id(fields[i])
            self.documents.put(doc_id, fields[i + 1])
        return Message(MessageType.ACK)

    def _handle_delete_document(self, message: Message) -> Message:
        """DELETE_DOCUMENT carries document ids whose bodies are dropped.

        Index entries referencing the id are NOT touched here: keyword-side
        removal happens through each scheme's own (masked) update protocol,
        so the server cannot correlate the delete with keywords.
        """
        for field in message.fields:
            self.documents.delete(decode_doc_id(field))
        return Message(MessageType.ACK)

    def _lookup_tag(self, tag: bytes):
        """Index lookup with comparison accounting (the log(u) instrument)."""
        entry = self.index.get(tag)
        self.index_comparisons_last_search = self.index.last_comparisons
        return entry

    def _documents_result(self, doc_ids: list[int]) -> Message:
        """Build the (id, ciphertext)* reply for a successful search.

        Ids whose body has been deleted are skipped (and counted): an index
        may briefly reference a deleted document when a client removed the
        body but has not yet patched every keyword.
        """
        fields: list[bytes] = []
        self.missing_documents_last_search = 0
        for doc_id in doc_ids:
            if not self.documents.contains(doc_id):
                self.missing_documents_last_search += 1
                continue
            fields.append(encode_doc_id(doc_id))
            fields.append(self.documents.get(doc_id))
        return Message(MessageType.DOCUMENTS_RESULT, tuple(fields))
