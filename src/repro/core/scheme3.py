"""Scheme 3 — forward-private dynamic updates (extension to the paper).

Scheme 1/2 updates reuse keyword-stable trapdoor material: every Scheme 2
update for keyword w ships the same tag f_kw(w), so the honest-but-curious
server links each update to a keyword — and to any past search for it — at
insert time.  Following Etemad & Küpçü (*Efficient Dynamic Searchable
Encryption with Forward Privacy*, see PAPERS.md), Scheme 3 removes that
link using nothing beyond the existing crypto substrate.  Update number i
for keyword w is keyed by a fresh element of a per-keyword hash chain

    k_i(w) = f^(l-i)(seed_w),    seed_w = PRF(k_w, epoch ‖ w)

and stored under the *address* f'(k_i(w)), a public PRF of the key itself.
No two updates share a wire-visible value, and no update shares anything
with a past search token: deriving k_{i+1} from k_i would mean walking the
one-way chain backwards.

* **Update** ships (address, ℰ_{k_i}(ids)) pairs — one fresh key per
  keyword per bulk call, amortized across the batch exactly like
  Scheme 2's triples.  The client keeps one small counter per keyword.
* **Search** sends a constant-size token (k_n(w), n).  The server unrolls
  backwards through the n update epochs: the address of k_n, then of
  k_{n-1} = f(k_n), … down to k_1, decrypting each entry it finds and
  replaying additions/tombstones in update order.
* **Fold-on-search**: the server consolidates what a search revealed into
  one record at the *newest* address and deletes the unrolled entries, so
  repeating a search at count n costs O(1) instead of O(n).  Folding
  makes search a mutating operation — it is classified as a write in
  :mod:`repro.net.session` and the consolidated records are part of the
  durable snapshot (``s3f:`` namespace, see :mod:`repro.core.state`).

What still leaks: searching the same keyword twice at the same count
repeats the token (search-pattern leakage, as in Scheme 1/2), and result
sizes leak unless padded.  What no longer leaks: update-to-keyword and
update-to-search correlations — measured head-to-head in
``benchmarks/bench_s57_update_leakage.py``.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.core.api import SearchResult, SseClient
from repro.core.cache import BoundedCache
from repro.core.documents import Document
from repro.core.keys import MasterKey
from repro.core.scheme1 import group_keywords
from repro.core.server import BaseSseServer, decode_doc_id, encode_doc_id
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.chain import ChainWalker, HashChain
from repro.crypto.hmac_sha256 import HMACSHA256
from repro.crypto.prp import FeistelPrp
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.ds.avl import AvlTree
from repro.ds.posting import decode_posting_list, encode_posting_list
from repro.errors import (ChainExhaustedError, ParameterError, ProtocolError,
                          StorageError)
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType

__all__ = ["Scheme3Server", "Scheme3Client", "DEFAULT_CHAIN_LENGTH",
           "ADDRESS_SIZE"]

DEFAULT_CHAIN_LENGTH = 1024

#: Addresses are truncated like keyword tags: 16 bytes keeps the birthday
#: bound negligible at any realistic update volume.
ADDRESS_SIZE = 16

_ADDRESS_LABEL = b"repro.s3.addr"
# Entry framing markers, mirroring Scheme 2's segments: a REMOVE entry is
# a tombstone that subtracts its ids when the server replays entries in
# update order.  Both kinds are identically shaped ciphertext on the wire.
_ENTRY_ADD = b"\x01"
_ENTRY_REMOVE = b"\x02"

# Keyed template computed once: the address PRF runs inside the server's
# unroll loop, once per visited chain position.
_ADDRESS_TEMPLATE = HMACSHA256(_ADDRESS_LABEL)

# Durable-state namespaces.  Pending (not yet searched) entries are pure
# key-value pairs; folded records additionally carry the update count they
# consolidate, so a restarted server keeps its O(1) repeat searches.
_S3_PENDING_PREFIX = b"s3:"
_S3_FOLDED_PREFIX = b"s3f:"


def _address(key: bytes) -> bytes:
    """The storage address f'(k_i): a public PRF of the update key."""
    mac = _ADDRESS_TEMPLATE.copy()
    mac.update(key)
    return mac.digest()[:ADDRESS_SIZE]


def _encrypt_entry(key: bytes, doc_ids: list[int],
                   remove: bool = False) -> bytes:
    """ℰ_k(I_i(w)): posting list under the variable-length Feistel PRP."""
    marker = _ENTRY_REMOVE if remove else _ENTRY_ADD
    payload = marker + encode_posting_list(doc_ids)
    return FeistelPrp(key).forward(payload)


def _decrypt_entry(key: bytes, blob: bytes) -> tuple[bool, list[int]]:
    """Invert :func:`_encrypt_entry`; returns (is_removal, ids)."""
    payload = FeistelPrp(key).inverse(blob)
    if payload[:1] not in (_ENTRY_ADD, _ENTRY_REMOVE):
        raise ProtocolError("entry decrypted to an invalid framing")
    return payload[:1] == _ENTRY_REMOVE, decode_posting_list(payload[1:])


def _pack_folded(count: int, doc_ids: list[int]) -> bytes:
    return struct.pack(">I", count) + encode_posting_list(doc_ids)


def _unpack_folded(value: bytes) -> tuple[int, list[int]]:
    if len(value) < 4:
        raise StorageError("malformed scheme-3 folded record")
    (count,) = struct.unpack(">I", value[:4])
    return count, decode_posting_list(value[4:])


class Scheme3Server(BaseSseServer):
    """Server side of Scheme 3.

    Holds two stores: *pending* entries (the AVL index, keyed by address —
    uploaded but never yet unrolled by a search) and *folded* records
    (one consolidated posting list per searched keyword, keyed by the
    newest address the folding search reached).  The server cannot tell
    which pending entries belong to the same keyword — that is the point —
    so consolidation only ever happens when a search token authorizes the
    unroll.

    ``max_walk`` caps the backward unroll (normally the chain length l) so
    a corrupted token cannot send the server into an unbounded walk.
    """

    def __init__(self, max_walk: int = DEFAULT_CHAIN_LENGTH) -> None:
        super().__init__()
        if max_walk < 1:
            raise ParameterError("max_walk must be at least 1")
        self.max_walk = max_walk
        self._folded: dict[bytes, tuple[int, list[int]]] = {}
        # Instrumentation for the forward-privacy benchmarks.
        self.unroll_steps_last_search = 0
        self.entries_folded_last_search = 0

    @property
    def unique_keywords(self) -> int:
        """Upper bound on the paper's u: pending entries + folded records.

        Unlike Scheme 1/2 the server cannot count true keywords — distinct
        updates for one keyword are unlinkable until a search folds them,
        which is precisely the forward-privacy property.  The overcount
        shrinks as searches consolidate.
        """
        return len(self.index) + len(self._folded)

    def _handle_scheme_message(self, message: Message) -> Message:
        if message.type == MessageType.S3_STORE_ENTRY:
            return self._handle_store_entry(message)
        if message.type == MessageType.S3_SEARCH_REQUEST:
            return self._handle_search(message)
        return super()._handle_scheme_message(message)

    def _handle_store_entry(self, message: Message) -> Message:
        """Store (address, ℰ_k(I)) pairs; the server learns nothing else."""
        fields = message.fields
        if len(fields) % 2:
            raise ProtocolError("S3_STORE_ENTRY fields come in pairs")
        for i in range(0, len(fields), 2):
            addr, blob = fields[i], fields[i + 1]
            self.index.insert(addr, blob)
            self.state_journal.put(_S3_PENDING_PREFIX + addr, blob)
        return Message(MessageType.ACK)

    def _handle_search(self, message: Message) -> Message:
        """Unroll the update epochs backwards from the token, then fold.

        The token element is the *newest* update key k_n; every earlier
        key is some forward step f^j of it.  The walk visits each update
        number once, newest first.  Hitting a folded record short-circuits
        the walk: it consolidates everything at or below its count.
        """
        token, count_field = message.expect(MessageType.S3_SEARCH_REQUEST, 2)
        if len(count_field) != 4:
            raise ProtocolError("S3 search count travels as 4 bytes")
        (count,) = struct.unpack(">I", count_field)
        if not 1 <= count <= self.max_walk:
            raise ProtocolError(
                f"S3 search count {count} outside 1..{self.max_walk}"
            )
        self.searches_handled += 1
        self.entries_folded_last_search = 0

        walker = ChainWalker(token, count - 1)
        element = walker.current
        newest_addr: bytes | None = None
        consumed: list[bytes] = []
        decrypted: dict[int, tuple[bool, list[int]]] = {}
        base_ids: set[int] = set()
        stale_folded: bytes | None = None
        already_folded = False
        for number in range(count, 0, -1):
            addr = _address(element)
            if newest_addr is None:
                newest_addr = addr
            folded = self._folded.get(addr)
            if folded is not None:
                base_ids = set(folded[1])
                if addr == newest_addr and not decrypted:
                    already_folded = True  # repeat search, nothing newer
                else:
                    stale_folded = addr
                break
            blob = self._lookup_tag(addr)
            if blob is not None:
                decrypted[number] = _decrypt_entry(element, blob)
                consumed.append(addr)
            if number > 1:
                element = walker.advance()
        self.unroll_steps_last_search = walker.steps_taken
        self.metrics.counter("s3_unroll_steps_total").inc(walker.steps_taken)

        # Replay in update order so tombstones subtract from exactly the
        # state the earlier entries (or the folded base) built.
        doc_ids = set(base_ids)
        for number in sorted(decrypted):
            is_removal, ids = decrypted[number]
            if is_removal:
                doc_ids.difference_update(ids)
            else:
                doc_ids.update(ids)

        if not already_folded:
            for addr in consumed:
                self.index.delete(addr)
                self.state_journal.delete(_S3_PENDING_PREFIX + addr)
            if stale_folded is not None:
                del self._folded[stale_folded]
                self.state_journal.delete(_S3_FOLDED_PREFIX + stale_folded)
            ordered = sorted(doc_ids)
            self._folded[newest_addr] = (count, ordered)
            self.state_journal.put(_S3_FOLDED_PREFIX + newest_addr,
                                   _pack_folded(count, ordered))
            self.entries_folded_last_search = len(consumed)
            self.metrics.counter("s3_entries_folded_total").inc(
                len(consumed))

        return self._documents_result(sorted(doc_ids))

    # -- snapshot protocol (see repro.core.state) --------------------------
    # Folded records ARE part of the snapshot: they carry per-keyword
    # update counts the epoch unroll relies on for its O(1) repeats, and
    # the pending entries they replaced are gone from the journal.

    def _index_state_records(self):
        for addr, blob in self.index.items():
            yield _S3_PENDING_PREFIX + addr, blob
        for addr, (count, ids) in self._folded.items():
            yield _S3_FOLDED_PREFIX + addr, _pack_folded(count, ids)

    def _state_loaders(self):
        loaders = super()._state_loaders()
        loaders[_S3_PENDING_PREFIX] = self._load_pending_record
        loaders[_S3_FOLDED_PREFIX] = self._load_folded_record
        return loaders

    def _load_pending_record(self, key: bytes, value: bytes) -> None:
        self.index.insert(key[len(_S3_PENDING_PREFIX):], value)

    def _load_folded_record(self, key: bytes, value: bytes) -> None:
        addr = key[len(_S3_FOLDED_PREFIX):]
        if len(addr) != ADDRESS_SIZE:
            raise StorageError("malformed scheme-3 folded key")
        self._folded[addr] = _unpack_folded(value)

    def _clear_state(self) -> None:
        super()._clear_state()
        self.index = AvlTree()
        self._folded = {}


class Scheme3Client(SseClient):
    """Client side of Scheme 3.

    Client state beyond the master key is one small integer per updated
    keyword (how many updates it has seen this epoch) plus the epoch
    number.  Per-keyword chains are derived, not stored:
    seed_w = PRF(k_w, epoch ‖ w), so the client stays thin — but note the
    exported state names the keywords it has updated.  That state is
    client-private (it never crosses the wire); leaking it to the server
    would of course void the forward-privacy argument.

    When a keyword's chain runs out a :class:`ChainExhaustedError` escapes
    the update call; call :meth:`reinitialize_epoch` with the full
    document collection to re-key, exactly as for Scheme 2.

    Bulk calls ship everything in one ``BATCH_REQUEST`` frame, and derived
    chains live in a namespaced LRU cache scoped by the current epoch
    (see :mod:`repro.core.cache`).
    """

    STATE_FORMAT = "repro.scheme3.client/1"

    def __init__(self, master_key: MasterKey, channel: Channel, *,
                 chain_length: int = DEFAULT_CHAIN_LENGTH,
                 rng: RandomSource | None = None,
                 decrypt_bodies: bool = True,
                 cache_size: int = 1024) -> None:
        super().__init__(channel)
        if chain_length < 1:
            raise ParameterError("chain length must be at least 1")
        self._key = master_key
        self._rng = rng if rng is not None else SystemRandomSource()
        self._cipher = AuthenticatedCipher(master_key.k_m, rng=self._rng)
        self._decrypt_bodies = decrypt_bodies
        self._chain_length = chain_length
        self._counts: dict[str, int] = {}
        self._epoch = 0
        self._chain_cache = BoundedCache(cache_size,
                                         namespace="scheme3-fp.chains",
                                         epoch=0)

    @property
    def chain_length(self) -> int:
        """Updates each keyword supports per epoch (the chain length l)."""
        return self._chain_length

    @property
    def epoch(self) -> int:
        """Current chain epoch (bumped on re-initialization)."""
        return self._epoch

    @property
    def update_counts(self) -> dict[str, int]:
        """Per-keyword update counts this epoch (a copy)."""
        return dict(self._counts)

    def updates_remaining(self, keyword: str) -> int:
        """Updates left for *keyword* before its chain is exhausted."""
        return self._chain_length - self._counts.get(keyword, 0)

    def export_state(self) -> dict:
        """Per-keyword counters and epoch — never key material."""
        state = super().export_state()
        state.update({
            "counts": dict(self._counts),
            "epoch": self._epoch,
            "chain_length": self._chain_length,
        })
        return state

    def import_state(self, state: dict) -> None:
        """Restore counters exported by a previous client instance."""
        super().import_state(state)
        chain_length = state.get("chain_length")
        if chain_length != self._chain_length:
            raise ParameterError(
                f"stored state was produced with chain length "
                f"{chain_length}, this client uses {self._chain_length}"
            )
        self._counts = {str(kw): int(n) for kw, n in state["counts"].items()}
        self._epoch = int(state["epoch"])
        self._chain_cache.set_epoch(self._epoch)
        self._chain_cache.clear()  # rebuilt on demand

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size snapshot of every derived-value cache."""
        return {"chains": self._chain_cache.stats()}

    # -- chain plumbing ---------------------------------------------------

    def _chain_for(self, keyword: str) -> HashChain:
        def compute() -> HashChain:
            seed = self._key.update_chain_prf().evaluate(
                self._epoch.to_bytes(4, "big") + keyword.encode("utf-8")
            )
            return HashChain(seed, self._chain_length)

        return self._chain_cache.get_or_compute(keyword, compute)

    def _metadata_message(self, grouped: dict[str, list[int]],
                          remove: bool = False) -> Message | None:
        """One fresh update key per keyword for the whole bulk call.

        Counters commit only after every key derives cleanly, so a
        mid-batch :class:`ChainExhaustedError` leaves the client state
        untouched (nothing was sent either — the message never built).
        """
        if not grouped:
            return None
        fields: list[bytes] = []
        advanced: dict[str, int] = {}
        for keyword in sorted(grouped):
            ctr = self._counts.get(keyword, 0) + 1
            if ctr > self._chain_length:
                raise ChainExhaustedError(
                    f"update chain of length {self._chain_length} exhausted "
                    f"for keyword {keyword!r}; call reinitialize_epoch() "
                    f"to re-key"
                )
            key = self._chain_for(keyword).key_for_counter(ctr)
            fields.append(_address(key))
            fields.append(_encrypt_entry(key, grouped[keyword],
                                         remove=remove))
            advanced[keyword] = ctr
        self._counts.update(advanced)
        return Message(MessageType.S3_STORE_ENTRY, tuple(fields))

    # -- document upload --------------------------------------------------

    def _documents_message(self, documents: Sequence[Document]) -> Message:
        fields: list[bytes] = []
        for doc in documents:
            fields.append(encode_doc_id(doc.doc_id))
            fields.append(self._cipher.encrypt(
                doc.data, associated_data=encode_doc_id(doc.doc_id)
            ))
        return Message(MessageType.STORE_DOCUMENT, tuple(fields))

    def _upload(self, documents: Sequence[Document],
                grouped: dict[str, list[int]]) -> None:
        """Ship document bodies + metadata as one batch frame."""
        messages = [self._documents_message(documents)]
        metadata = self._metadata_message(grouped)
        if metadata is not None:
            messages.append(metadata)
        for reply in self._channel.request_many(messages):
            reply.expect(MessageType.ACK)

    # -- public API -------------------------------------------------------

    def store(self, documents: Sequence[Document]) -> None:
        """Initial Storage: one document upload + one metadata message."""
        self._upload(documents, dict(group_keywords(documents)))

    def add_documents(self, documents: Sequence[Document]) -> None:
        """Forward-private update: fresh addresses, batched upload."""
        self._upload(documents, dict(group_keywords(documents)))

    def remove_documents(self, documents: Sequence[Document]) -> None:
        """Remove documents via tombstone entries, one batch frame.

        Like Scheme 2 removal, the caller supplies the full keyword sets;
        the server applies tombstones in update order during the search
        unroll, so a later re-add of the same id wins.
        """
        messages: list[Message] = []
        metadata = self._metadata_message(dict(group_keywords(documents)),
                                          remove=True)
        if metadata is not None:
            messages.append(metadata)
        messages.append(Message(
            MessageType.DELETE_DOCUMENT,
            tuple(encode_doc_id(doc.doc_id) for doc in documents),
        ))
        for reply in self._channel.request_many(messages):
            reply.expect(MessageType.ACK)

    def fake_update(self, keywords: Sequence[str]) -> None:
        """Append empty entries for *keywords* (traffic-shaping decoys).

        Indistinguishable from real updates by construction — every entry
        already lands at a fresh unlinkable address — so fake updates here
        only pad update *counts*, not correlations.
        """
        message = self._metadata_message({kw: [] for kw in keywords})
        if message is not None:
            self._channel.request(message).expect(MessageType.ACK)

    def _search_message(self, keyword: str) -> Message:
        count = self._counts[keyword]
        token = self._chain_for(keyword).key_for_counter(count)
        # Releasing the constant-size chain token IS the Scheme 3 search
        # protocol: the server walks the update chain from it and decrypts
        # exactly this keyword's entries (the paper's defined trapdoor).
        return Message(MessageType.S3_SEARCH_REQUEST,  # repro: allow(secret-flow)
                       (token, struct.pack(">I", count)))

    def _parse_search_reply(self, keyword: str, reply: Message
                            ) -> SearchResult:
        fields = reply.expect(MessageType.DOCUMENTS_RESULT)
        doc_ids: list[int] = []
        documents: list[bytes] = []
        for i in range(0, len(fields), 2):
            doc_ids.append(decode_doc_id(fields[i]))
            if self._decrypt_bodies:
                documents.append(self._cipher.decrypt(
                    fields[i + 1], associated_data=fields[i]
                ))
            else:
                documents.append(fields[i + 1])  # opaque ciphertext
        return SearchResult(keyword, doc_ids, documents)

    def search(self, keyword: str) -> SearchResult:
        """One-round search: constant-size token, server-side unroll."""
        if self._counts.get(keyword, 0) == 0:
            # Never updated this epoch: answer locally, leak nothing.
            return SearchResult(keyword, [], [])
        reply = self._channel.request(self._search_message(keyword))
        return self._parse_search_reply(keyword, reply)

    def search_batch(self, keywords: Sequence[str]) -> list[SearchResult]:
        """Search many keywords in ONE round: all tokens, one frame.

        Keywords with no updates this epoch answer locally; the rest ship
        together and results align with *keywords*.
        """
        results: list[SearchResult | None] = []
        pending: list[int] = []
        messages: list[Message] = []
        for index, keyword in enumerate(keywords):
            if self._counts.get(keyword, 0) == 0:
                results.append(SearchResult(keyword, [], []))
            else:
                results.append(None)
                pending.append(index)
                messages.append(self._search_message(keyword))
        if messages:
            replies = self._channel.request_many(messages)
            for index, reply in zip(pending, replies):
                results[index] = self._parse_search_reply(
                    keywords[index], reply)
        return results

    def reinitialize_epoch(self, documents: Sequence[Document]) -> None:
        """Re-key after chain exhaustion.

        Bumps the epoch (fresh seeds, fresh chains), resets every
        per-keyword counter, and re-uploads the metadata of the supplied
        collection.  Old-epoch entries become unreachable garbage on the
        server, exactly as for Scheme 2.
        """
        self._epoch += 1
        self._counts = {}
        self._chain_cache.set_epoch(self._epoch)
        self._upload(documents, dict(group_keywords(documents)))
