"""Scheme 2 — diminishing the communication cost (paper §5.4–5.6).

Instead of Scheme 1's fixed-width bit arrays, each update appends a small
*segment*: the new document ids for keyword w, encrypted under a key drawn
from a per-keyword pseudo-random chain.  After j updates:

    S(w) = ( f_kw(w),
             ℰ_{k_1(w)}(I_1(w)), f'(k_1(w)),
             ...,
             ℰ_{k_j(w)}(I_j(w)), f'(k_j(w)) )

with k_j(w) = f^(l-ctr_j)(seed_w) where ``ctr`` is a global update counter
and ``l`` the chain length.  Because chain elements for *earlier* updates
lie *forward* of later ones, a single trapdoor element lets the server walk
forward and unlock every past segment — but never future ones.

* **Update** is one message per batch (Fig. 3): a (tag, segment, verifier)
  triple per keyword.  Bandwidth is proportional to the number of new ids,
  not to the database capacity — the whole point versus Scheme 1.
* **Search** is one round (Fig. 4): trapdoor (f_kw(w), f^(l-ctr)(seed_w)).
  The server chain-walks from the trapdoor, matching verifiers f'(k) to
  recognize segment keys, decrypts all segments, and serves the documents.
* **Optimization 1** (§5.6): the server caches plaintext ids revealed by a
  search so later searches only decrypt newer segments.
* **Optimization 2** (§5.6): the client increments ``ctr`` only if a search
  happened since the last update, stretching the chain's lifetime; when the
  chain is exhausted the client re-keys into a fresh epoch.

Both optimizations are constructor flags so the ablation benchmarks can
run with and without them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.api import SearchResult, SseClient
from repro.core.cache import BoundedCache
from repro.core.documents import Document
from repro.core.keys import MasterKey
from repro.core.scheme1 import group_keywords
from repro.core.server import BaseSseServer, decode_doc_id, encode_doc_id
from repro.core.state import pack_fields, unpack_fields
from repro.crypto.authenc import AuthenticatedCipher
from repro.crypto.chain import ChainWalker, HashChain
from repro.crypto.hmac_sha256 import HMACSHA256
from repro.crypto.prp import FeistelPrp
from repro.crypto.rng import RandomSource, SystemRandomSource
from repro.ds.avl import AvlTree
from repro.ds.posting import decode_posting_list, encode_posting_list
from repro.errors import (ChainExhaustedError, ParameterError, ProtocolError,
                          StorageError)
from repro.net.channel import Channel
from repro.net.messages import Message, MessageType

__all__ = ["Scheme2Server", "Scheme2Client", "DEFAULT_CHAIN_LENGTH"]

DEFAULT_CHAIN_LENGTH = 1024

_VERIFIER_LABEL = b"repro.s2.verifier"
# Segment framing markers.  The paper's segments only ever ADD ids; the
# REMOVE marker is this implementation's tombstone extension: a removal
# segment subtracts its ids when the server replays segments in append
# order.  On the wire both kinds are Feistel-encrypted blobs of identical
# shape, so the server cannot tell an addition from a removal until a
# search authorizes decryption.
_SEGMENT_ADD = b"\x01"
_SEGMENT_REMOVE = b"\x02"

# Keyed template computed once: the verifier PRF runs inside the server's
# chain-walk loop, once per visited chain position.
_VERIFIER_TEMPLATE = HMACSHA256(_VERIFIER_LABEL)

# Durable-state namespace: position(4, big-endian) ‖ tag -> blob ‖ verifier.
# The position comes *before* the tag so a per-tag contiguity check is all
# a load needs; append order within a tag is what removal tombstones rely
# on, so it must survive the round-trip.
_S2_PREFIX = b"s2:"


def _segment_record_key(tag: bytes, position: int) -> bytes:
    return _S2_PREFIX + struct.pack(">I", position) + tag


def _verifier(key: bytes) -> bytes:
    """The paper's f'(k): a public PRF of the segment key."""
    mac = _VERIFIER_TEMPLATE.copy()
    mac.update(key)
    return mac.digest()[:16]


def _encrypt_segment(key: bytes, doc_ids: list[int],
                     remove: bool = False) -> bytes:
    """ℰ_k(I_j(w)): posting list under the variable-length Feistel PRP."""
    marker = _SEGMENT_REMOVE if remove else _SEGMENT_ADD
    payload = marker + encode_posting_list(doc_ids)
    return FeistelPrp(key).forward(payload)


def _decrypt_segment(key: bytes, blob: bytes) -> tuple[bool, list[int]]:
    """Invert :func:`_encrypt_segment`; returns (is_removal, ids)."""
    payload = FeistelPrp(key).inverse(blob)
    if payload[:1] not in (_SEGMENT_ADD, _SEGMENT_REMOVE):
        raise ProtocolError("segment decrypted to an invalid framing")
    return payload[:1] == _SEGMENT_REMOVE, decode_posting_list(payload[1:])


@dataclass
class _KeywordEntry:
    """Server-side state for one keyword tag."""

    segments: list[tuple[bytes, bytes]] = field(default_factory=list)
    # Optimization 1 cache: ids revealed by past searches, and how many
    # segments they cover (the prefix of `segments` already decrypted).
    cached_ids: set[int] = field(default_factory=set)
    cached_segments: int = 0


PADDING_DOC_ID = (1 << 64) - 1


class Scheme2Server(BaseSseServer):
    """Server side of Scheme 2.

    ``cache_plaintext`` enables Optimization 1.  ``max_walk`` caps the
    forward chain walk (normally the chain length l) so a corrupted
    trapdoor cannot send the server into an unbounded loop.

    ``pad_results_to`` (countermeasure, not in the paper): when set, every
    search reply is padded with dummy entries up to that count, closing
    the result-count side channel that frequency attacks exploit
    (:mod:`repro.security.attacks`).  Dummies use the reserved
    :data:`PADDING_DOC_ID` and random ciphertext-shaped bytes; clients
    drop them before decryption.  Note this is cooperative padding — the
    *client* asks for it by deploying a padding server; a malicious server
    could always skip it, but a malicious server already sees true counts.
    """

    def __init__(self, max_walk: int = DEFAULT_CHAIN_LENGTH,
                 cache_plaintext: bool = True,
                 pad_results_to: int | None = None) -> None:
        super().__init__()
        if pad_results_to is not None and pad_results_to < 1:
            raise ParameterError("padding target must be positive")
        self.max_walk = max_walk
        self.cache_plaintext = cache_plaintext
        self.pad_results_to = pad_results_to
        self._pad_rng = SystemRandomSource()
        # Instrumentation for the l/2x benchmarks.
        self.chain_steps_last_search = 0
        self.segments_decrypted_last_search = 0

    def _documents_result(self, doc_ids):
        message = super()._documents_result(doc_ids)
        if self.pad_results_to is None:
            return message
        real = len(message.fields) // 2
        body_size = max(
            [len(message.fields[i]) for i in range(1, len(message.fields), 2)],
            default=64,
        )
        fields = list(message.fields)
        for _ in range(max(0, self.pad_results_to - real)):
            fields.append(encode_doc_id(PADDING_DOC_ID))
            fields.append(self._pad_rng.random_bytes(body_size))
        return Message(MessageType.DOCUMENTS_RESULT, tuple(fields))

    def _handle_scheme_message(self, message: Message) -> Message:
        if message.type == MessageType.S2_STORE_ENTRY:
            return self._handle_store_entry(message)
        if message.type == MessageType.S2_SEARCH_REQUEST:
            return self._handle_search(message)
        return super()._handle_scheme_message(message)

    def _handle_store_entry(self, message: Message) -> Message:
        """Fig. 3: append (tag, ℰ_k(I), f'(k)) triples to the index."""
        fields = message.fields
        if len(fields) % 3:
            raise ProtocolError("S2_STORE_ENTRY fields come in triples")
        for i in range(0, len(fields), 3):
            tag, blob, verifier = fields[i], fields[i + 1], fields[i + 2]
            entry = self.index.get(tag)
            if entry is None:
                entry = _KeywordEntry()
                self.index.insert(tag, entry)
            entry.segments.append((blob, verifier))
            self.state_journal.put(
                _segment_record_key(tag, len(entry.segments) - 1),
                pack_fields(blob, verifier),
            )
        return Message(MessageType.ACK)

    def _handle_search(self, message: Message) -> Message:
        """Fig. 4: one-round search via forward chain walk.

        The trapdoor element sits at (or before) the chain position of the
        *newest* segment key; every older segment key lies further forward.
        The walk visits each position once, decrypting segments as their
        verifiers match, and stops when all (uncached) segments are open.
        """
        tag, trapdoor = message.expect(MessageType.S2_SEARCH_REQUEST, 2)
        self.searches_handled += 1
        self.chain_steps_last_search = 0
        self.segments_decrypted_last_search = 0
        entry = self._lookup_tag(tag)
        if entry is None:
            # Empty result — built through _documents_result so padding
            # (if configured) also hides the "no such keyword" case.
            return self._documents_result([])

        start = entry.cached_segments if self.cache_plaintext else 0
        pending: dict[bytes, list[int]] = {}
        for seg_index in range(start, len(entry.segments)):
            _, verifier = entry.segments[seg_index]
            pending.setdefault(verifier, []).append(seg_index)

        # Walk the chain to decrypt every pending segment, then replay the
        # payloads in append order (removal tombstones must subtract from
        # exactly the state the preceding segments built).
        decrypted: dict[int, tuple[bool, list[int]]] = {}
        walker = ChainWalker(trapdoor, self.max_walk)
        element = walker.current
        while pending:
            v = _verifier(element)
            if v in pending:
                for seg_index in pending.pop(v):
                    blob, _ = entry.segments[seg_index]
                    decrypted[seg_index] = _decrypt_segment(element, blob)
                    self.segments_decrypted_last_search += 1
            if pending:
                element = walker.advance()
        self.chain_steps_last_search = walker.steps_taken

        doc_ids: set[int] = (set(entry.cached_ids)
                             if self.cache_plaintext else set())
        for seg_index in sorted(decrypted):
            is_removal, ids = decrypted[seg_index]
            if is_removal:
                doc_ids.difference_update(ids)
            else:
                doc_ids.update(ids)

        if self.cache_plaintext:
            # Optimization 1: remember what this search revealed so the next
            # search only decrypts segments appended after this point.
            entry.cached_ids = set(doc_ids)
            entry.cached_segments = len(entry.segments)

        return self._documents_result(sorted(doc_ids))

    # -- snapshot protocol (see repro.core.state) --------------------------
    # The Optimization 1 cache is volatile acceleration state and is
    # deliberately NOT part of the snapshot: a restarted server simply
    # re-decrypts segments on its first search.

    def _index_state_records(self):
        for tag, entry in self.index.items():
            for position, (blob, verifier) in enumerate(entry.segments):
                yield (_segment_record_key(tag, position),
                       pack_fields(blob, verifier))

    def _state_loaders(self):
        loaders = super()._state_loaders()
        loaders[_S2_PREFIX] = self._load_segment_record
        return loaders

    def _load_segment_record(self, key: bytes, value: bytes) -> None:
        body = key[len(_S2_PREFIX):]
        if len(body) < 5:
            raise StorageError("malformed scheme-2 segment key")
        (position,) = struct.unpack(">I", body[:4])
        blob, verifier = unpack_fields(value)
        self._loaded_segments.setdefault(body[4:], {})[position] = \
            (blob, verifier)

    def _clear_state(self) -> None:
        super()._clear_state()
        self.index = AvlTree()
        self._loaded_segments: dict[bytes, dict[int, tuple[bytes, bytes]]] = {}

    def _finish_load_state(self) -> None:
        # Records can arrive in any order; replay each tag's segments in
        # position order and insist the positions are gapless — a hole
        # means the store lost an append tombstones may depend on.
        for tag, by_position in self._loaded_segments.items():
            entry = _KeywordEntry()
            for expected, position in enumerate(sorted(by_position)):
                if position != expected:
                    raise StorageError(
                        f"segment list for tag {tag.hex()} has a gap at "
                        f"position {expected}"
                    )
                entry.segments.append(by_position[position])
            self.index.insert(tag, entry)
        self._loaded_segments = {}


class Scheme2Client(SseClient):
    """Client side of Scheme 2.

    Client state beyond the master key is two integers — the global update
    counter ``ctr`` and a "search since last update" flag (Optimization 2)
    plus the current chain epoch.  Per-keyword chains are *derived*, not
    stored: seed_w = PRF(k_w, epoch ‖ w), so the client stays thin.

    ``lazy_counter`` enables Optimization 2.  When the chain runs out a
    :class:`ChainExhaustedError` escapes ``add_documents``; call
    :meth:`reinitialize_epoch` with the full document collection to re-key.

    Bulk calls (``store``, ``add_documents``, ``remove_documents``,
    ``search_batch``) ship everything in **one** ``BATCH_REQUEST`` frame —
    one round-trip, one server lock, one fsync — and derived values (tags,
    chains, trapdoors) live in bounded LRU caches so a warm search
    recomputes nothing.  Each cache is namespaced and scoped by a
    scheme-supplied epoch token — (epoch) for tags and chains,
    (epoch, ctr) for trapdoors — advanced on epoch change and counter
    advance, and cleared outright on state import.
    """

    STATE_FORMAT = "repro.scheme2.client/1"

    def __init__(self, master_key: MasterKey, channel: Channel, *,
                 chain_length: int = DEFAULT_CHAIN_LENGTH,
                 lazy_counter: bool = True,
                 rng: RandomSource | None = None,
                 decrypt_bodies: bool = True,
                 cache_size: int = 1024) -> None:
        super().__init__(channel)
        if chain_length < 1:
            raise ParameterError("chain length must be at least 1")
        self._key = master_key
        self._rng = rng if rng is not None else SystemRandomSource()
        self._cipher = AuthenticatedCipher(master_key.k_m, rng=self._rng)
        # Search-only delegates (see repro.core.delegation) hold a dummy
        # k_m and set this False: searches return ids, bodies stay opaque.
        self._decrypt_bodies = decrypt_bodies
        self._chain_length = chain_length
        self._lazy_counter = lazy_counter
        self._ctr = 0
        self._search_since_update = True  # first update always advances
        self._epoch = 0
        # Derived-value caches, namespaced per derivation and scoped by
        # scheme-supplied epoch tokens (trapdoors additionally by the
        # counter) — see repro.core.cache.
        self._tag_cache = BoundedCache(cache_size,
                                       namespace="scheme2.tags", epoch=0)
        self._chain_cache = BoundedCache(cache_size,
                                         namespace="scheme2.chains", epoch=0)
        self._trapdoor_cache = BoundedCache(
            cache_size, namespace="scheme2.trapdoors", epoch=(0, 0))

    @property
    def ctr(self) -> int:
        """Current value of the global update counter."""
        return self._ctr

    @property
    def chain_length(self) -> int:
        """The chain length l (maximum counter value before exhaustion)."""
        return self._chain_length

    @property
    def epoch(self) -> int:
        """Current chain epoch (bumped on re-initialization)."""
        return self._epoch

    @property
    def updates_remaining(self) -> int:
        """Counter-advancing updates left before the chain is exhausted."""
        return self._chain_length - self._ctr

    def export_state(self) -> dict:
        """The §5.6 client state: counters and epoch, never key material."""
        state = super().export_state()
        state.update({
            "ctr": self._ctr,
            "epoch": self._epoch,
            "search_since_update": self._search_since_update,
            "chain_length": self._chain_length,
            "lazy_counter": self._lazy_counter,
        })
        return state

    def import_state(self, state: dict) -> None:
        """Restore counters exported by a previous client instance."""
        super().import_state(state)
        chain_length = state.get("chain_length")
        if chain_length != self._chain_length:
            raise ParameterError(
                f"stored state was produced with chain length "
                f"{chain_length}, this client uses {self._chain_length}"
            )
        self._ctr = int(state["ctr"])
        self._epoch = int(state["epoch"])
        self._search_since_update = bool(state["search_since_update"])
        self._lazy_counter = bool(state["lazy_counter"])
        self._clear_derived_caches()  # rebuilt on demand

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size snapshot of every derived-value cache."""
        return {
            "tags": self._tag_cache.stats(),
            "chains": self._chain_cache.stats(),
            "trapdoors": self._trapdoor_cache.stats(),
        }

    # -- chain plumbing ---------------------------------------------------

    def _sync_cache_epochs(self) -> None:
        """Point every cache at the current (epoch[, ctr]) scope tokens."""
        self._tag_cache.set_epoch(self._epoch)
        self._chain_cache.set_epoch(self._epoch)
        self._trapdoor_cache.set_epoch((self._epoch, self._ctr))

    def _clear_derived_caches(self) -> None:
        self._sync_cache_epochs()
        self._tag_cache.clear()
        self._chain_cache.clear()
        self._trapdoor_cache.clear()

    def _tag_for(self, keyword: str) -> bytes:
        # The tag is epoch-scoped so re-initialization invalidates every
        # stale representation in one stroke.
        def compute() -> bytes:
            material = self._epoch.to_bytes(4, "big") + keyword.encode("utf-8")
            return self._key.keyword_tag_prf().evaluate_truncated(material, 16)

        return self._tag_cache.get_or_compute(keyword, compute)

    def _chain_for(self, keyword: str) -> HashChain:
        def compute() -> HashChain:
            seed = self._key.keyword_seed_prf().evaluate(
                self._epoch.to_bytes(4, "big") + keyword.encode("utf-8")
            )
            return HashChain(seed, self._chain_length)

        return self._chain_cache.get_or_compute(keyword, compute)

    def _trapdoor_for(self, keyword: str) -> bytes:
        """The trapdoor chain element f^(l-ctr)(seed_w), LRU-cached.

        The cache's scope token carries (epoch, ctr), so a counter
        advance simply stops hitting old entries (see
        :meth:`_advance_counter`).
        """
        return self._trapdoor_cache.get_or_compute(
            keyword,
            lambda: self._chain_for(keyword).element(
                self._chain_length - self._ctr
            ),
        )

    def _segment_key(self, keyword: str, ctr: int) -> bytes:
        """k(w) at counter *ctr*: f^(l-ctr)(seed_w)."""
        return self._chain_for(keyword).key_for_counter(ctr)

    def _advance_counter(self) -> int:
        """Apply the §5.6 counter policy and return the counter to use."""
        if self._lazy_counter and not self._search_since_update and self._ctr > 0:
            # Optimization 2: no search observed since the last update, so
            # the server knows nothing about the last key — reuse it.
            return self._ctr
        if self._ctr >= self._chain_length:
            raise ChainExhaustedError(
                f"chain of length {self._chain_length} exhausted after "
                f"{self._ctr} counter-advancing updates; call "
                f"reinitialize_epoch() to re-key"
            )
        self._ctr += 1
        self._search_since_update = False
        # Old-counter trapdoors become unreachable under the new token.
        self._trapdoor_cache.set_epoch((self._epoch, self._ctr))
        return self._ctr

    # -- document upload --------------------------------------------------

    def _documents_message(self, documents: Sequence[Document]) -> Message:
        fields: list[bytes] = []
        for doc in documents:
            fields.append(encode_doc_id(doc.doc_id))
            fields.append(self._cipher.encrypt(
                doc.data, associated_data=encode_doc_id(doc.doc_id)
            ))
        return Message(MessageType.STORE_DOCUMENT, tuple(fields))

    def _metadata_message(self, grouped: dict[str, list[int]],
                          remove: bool = False) -> Message | None:
        """Build the Fig. 3 triples for a whole document set in one pass.

        The crypto is amortized across the batch: the counter advances
        once, and each keyword costs one (cached) tag PRF, one chain
        element off its (cached) hash chain, one segment encryption, and
        one verifier — however many documents the batch carried.
        """
        if not grouped:
            return None
        ctr = self._advance_counter()
        fields: list[bytes] = []
        for keyword in sorted(grouped):
            key = self._segment_key(keyword, ctr)
            fields.append(self._tag_for(keyword))
            fields.append(_encrypt_segment(key, grouped[keyword],
                                           remove=remove))
            fields.append(_verifier(key))
        return Message(MessageType.S2_STORE_ENTRY, tuple(fields))

    def _upload(self, documents: Sequence[Document],
                grouped: dict[str, list[int]]) -> None:
        """Ship document bodies + metadata as one batch frame."""
        messages = [self._documents_message(documents)]
        metadata = self._metadata_message(grouped)
        if metadata is not None:
            messages.append(metadata)
        for reply in self._channel.request_many(messages):
            reply.expect(MessageType.ACK)

    # -- public API -------------------------------------------------------

    def store(self, documents: Sequence[Document],
              pad_keywords_to: int | None = None) -> None:
        """Initial Storage: one document upload + one metadata message.

        ``pad_keywords_to`` hides |W_D| (§5.7's "hide the amount of
        keywords"): decoy keywords with empty posting lists pad the index
        up to the target.  Decoys are derived (not random) so the padded
        store stays a pure function of the inputs, but live in a reserved
        ``\\x00``-prefixed namespace no user keyword can reach (user
        keywords are non-empty printable strings).
        """
        grouped: dict[str, list[int]] = dict(group_keywords(documents))
        if pad_keywords_to is not None:
            for i in range(max(0, pad_keywords_to - len(grouped))):
                grouped[f"\x00decoy-{i}"] = []
        self._upload(documents, grouped)

    def add_documents(self, documents: Sequence[Document]) -> None:
        """The Fig. 3 metadata update, batched with the document upload."""
        self._upload(documents, dict(group_keywords(documents)))

    def remove_documents(self, documents: Sequence[Document]) -> None:
        """Remove documents via tombstone segments (extension to the paper).

        Appends a REMOVE segment for each of the documents' keywords and
        deletes the stored bodies, both in one batch frame.  Like Scheme 1
        removal, the caller must supply the full keyword sets; the server
        applies tombstones in append order during search, so a later
        re-add of the same id wins.  One segment key covers the whole
        batch, exactly as for additions.
        """
        messages: list[Message] = []
        metadata = self._metadata_message(dict(group_keywords(documents)),
                                          remove=True)
        if metadata is not None:
            messages.append(metadata)
        messages.append(Message(
            MessageType.DELETE_DOCUMENT,
            tuple(encode_doc_id(doc.doc_id) for doc in documents),
        ))
        for reply in self._channel.request_many(messages):
            reply.expect(MessageType.ACK)

    def fake_update(self, keywords: Sequence[str]) -> None:
        """§5.7 fake update: refresh keywords without changing any index.

        Appends empty segments for *keywords*; the server cannot tell an
        empty segment from a real one (same framing, same sizes for equal
        id-counts), so padding every update to a fixed keyword count hides
        which keywords a real update touched.
        """
        message = self._metadata_message({kw: [] for kw in keywords})
        if message is not None:
            self._channel.request(message).expect(MessageType.ACK)

    def _search_message(self, keyword: str) -> Message:
        # Releasing the chain element f^(l-ctr)(seed_w) IS the Scheme 2
        # search protocol: the server hashes forward from it to recover
        # this keyword's segment keys and nothing else (the paper's
        # defined trapdoor leakage, §5.4).
        return Message(MessageType.S2_SEARCH_REQUEST,  # repro: allow(secret-flow)
                       (self._tag_for(keyword), self._trapdoor_for(keyword)))

    def _parse_search_reply(self, keyword: str, reply: Message
                            ) -> SearchResult:
        fields = reply.expect(MessageType.DOCUMENTS_RESULT)
        doc_ids: list[int] = []
        documents: list[bytes] = []
        for i in range(0, len(fields), 2):
            doc_id = decode_doc_id(fields[i])
            if doc_id == PADDING_DOC_ID:
                continue  # server-side result padding (see Scheme2Server)
            doc_ids.append(doc_id)
            if self._decrypt_bodies:
                documents.append(self._cipher.decrypt(
                    fields[i + 1], associated_data=fields[i]
                ))
            else:
                documents.append(fields[i + 1])  # opaque ciphertext
        return SearchResult(keyword, doc_ids, documents)

    def search(self, keyword: str) -> SearchResult:
        """The Fig. 4 one-round search."""
        if self._ctr == 0:
            # Nothing has ever been stored under this epoch.
            return SearchResult(keyword, [], [])
        reply = self._channel.request(self._search_message(keyword))
        self._search_since_update = True
        return self._parse_search_reply(keyword, reply)

    def search_batch(self, keywords: Sequence[str]) -> list[SearchResult]:
        """Search many keywords in ONE round: all trapdoors, one frame.

        Results align with *keywords*.  The whole batch runs under a
        single read-lock acquisition on a concurrent server.
        """
        if self._ctr == 0:
            return [SearchResult(keyword, [], []) for keyword in keywords]
        replies = self._channel.request_many(
            [self._search_message(keyword) for keyword in keywords]
        )
        self._search_since_update = True
        return [self._parse_search_reply(keyword, reply)
                for keyword, reply in zip(keywords, replies)]

    def reinitialize_epoch(self, documents: Sequence[Document]) -> None:
        """Re-key after chain exhaustion (§5.6, Optimization 2 discussion).

        Bumps the epoch (fresh seeds + fresh tags), resets the counter, and
        re-uploads the metadata of the supplied collection.  The caller
        supplies the documents because the thin client keeps no plaintext
        index; in practice it would fetch-and-decrypt its own collection
        first.  Old-epoch representations become unreachable garbage on the
        server (a real deployment would also send deletes).
        """
        self._epoch += 1
        self._ctr = 0
        self._search_since_update = True
        self._clear_derived_caches()
        self._upload(documents, dict(group_keywords(documents)))
