"""A small bounded LRU cache for client-side derived crypto values.

Scheme clients re-derive the same per-keyword values — PRF tags, hash
chains, trapdoors — on every call.  Those derivations are pure functions
of (key material, epoch, counter, keyword), so a repeated search can skip
them entirely.  :class:`BoundedCache` is the one cache type used for
this: least-recently-used eviction with a hard entry cap (a client that
searches a million distinct keywords must not grow without bound), and
hit/miss counters the benchmarks read to prove warm searches are cheaper.

Scoping is the cache's job, not the caller's.  Every cache is built with
a *namespace* (which scheme and which derivation it serves) and carries a
caller-supplied *epoch token*; both are folded into every lookup key.
Callers advance the scope with :meth:`BoundedCache.set_epoch` whenever a
derivation input changes (epoch re-keying, counter advance) — entries
under the old token become unreachable and age out of the LRU.  Plain
integer epochs used to be part of the caller-built keys, which collides
the moment two clients of the same process count epochs independently:
both reach epoch 1, and one client's bump could leave the other reading
entries it never derived.  A scheme-supplied namespace plus an explicit
token keyed per cache makes that collision structurally impossible.

:meth:`BoundedCache.clear` remains for events that invalidate *every*
scope at once (client state import).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro.errors import ParameterError

__all__ = ["BoundedCache", "DEFAULT_CACHE_SIZE"]

#: Default entry cap: plenty for a working set of hot keywords while
#: bounding a client's memory at a few thousand small derived values.
DEFAULT_CACHE_SIZE = 1024

_V = TypeVar("_V")


class BoundedCache:
    """LRU-evicting mapping with a hard size cap and hit/miss counters.

    *namespace* names what this cache holds (e.g. ``"scheme2.trapdoors"``)
    and *epoch* is the scheme-supplied scope token; both are composed into
    every key so caches sharing a process can never serve each other's
    entries.  Not thread-safe by design: clients are single-threaded
    protocol drivers (the server side is where concurrency lives).
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE, *,
                 namespace: Hashable = None,
                 epoch: Hashable = None) -> None:
        if max_entries < 1:
            raise ParameterError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self.namespace = namespace
        self._epoch = epoch
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def epoch(self) -> Hashable:
        """The current scope token (see :meth:`set_epoch`)."""
        return self._epoch

    def set_epoch(self, epoch: Hashable) -> None:
        """Adopt a new scope token; other-token entries become unreachable.

        Stale entries are not dropped eagerly — they simply never match a
        lookup again and age out of the LRU, which is O(1) here versus
        O(n) for a scan-and-delete.
        """
        self._epoch = epoch

    def _scoped(self, key: Hashable) -> Hashable:
        return (self.namespace, self._epoch, key)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return self._scoped(key) in self._entries

    def get(self, key: Hashable, default=None):
        """Return the cached value (refreshing its recency), or *default*."""
        key = self._scoped(key)
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh *key*, evicting the LRU entry past the cap."""
        key = self._scoped(key)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], _V]) -> _V:
        """Return the cached value, computing and storing it on a miss."""
        scoped = self._scoped(key)
        try:
            value = self._entries[scoped]
        except KeyError:
            self.misses += 1
            value = compute()
            self.put(key, value)
            return value
        self._entries.move_to_end(scoped)
        self.hits += 1
        return value

    def clear(self) -> None:
        """Drop every entry in every scope (hit/miss counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Snapshot of size and counters, for stats displays and tests."""
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "max_entries": self.max_entries}
