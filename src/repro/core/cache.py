"""A small bounded LRU cache for client-side derived crypto values.

Scheme clients re-derive the same per-keyword values — PRF tags, hash
chains, trapdoors — on every call.  Those derivations are pure functions
of (key material, epoch, counter, keyword), so a repeated search can skip
them entirely.  :class:`BoundedCache` is the one cache type used for
this: least-recently-used eviction with a hard entry cap (a client that
searches a million distinct keywords must not grow without bound), and
hit/miss counters the benchmarks read to prove warm searches are cheaper.

Invalidation is the caller's job and is deliberately coarse:
:meth:`BoundedCache.clear` on any event that changes the derivation
inputs (epoch re-keying, counter advance, state import).  Entries keyed
on ``(epoch, keyword)`` or ``(epoch, ctr, keyword)`` never need partial
invalidation — a stale epoch or counter simply never gets looked up
again and ages out of the LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro.errors import ParameterError

__all__ = ["BoundedCache", "DEFAULT_CACHE_SIZE"]

#: Default entry cap: plenty for a working set of hot keywords while
#: bounding a client's memory at a few thousand small derived values.
DEFAULT_CACHE_SIZE = 1024

_V = TypeVar("_V")


class BoundedCache:
    """LRU-evicting mapping with a hard size cap and hit/miss counters.

    Not thread-safe by design: clients are single-threaded protocol
    drivers (the server side is where concurrency lives).
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise ParameterError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default=None):
        """Return the cached value (refreshing its recency), or *default*."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh *key*, evicting the LRU entry past the cap."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], _V]) -> _V:
        """Return the cached value, computing and storing it on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self.put(key, value)
            return value
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Snapshot of size and counters, for stats displays and tests."""
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "max_entries": self.max_entries}
